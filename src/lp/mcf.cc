#include "src/lp/mcf.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/lp/lp_problem.h"
#include "src/telemetry/telemetry.h"

namespace bds {

int McfInstance::num_paths() const {
  int n = 0;
  for (const McfCommodity& c : commodities) {
    n += static_cast<int>(c.paths.size());
  }
  return n;
}

double McfResult::CommodityFlow(int c) const {
  double sum = 0.0;
  for (double f : flow[static_cast<size_t>(c)]) {
    sum += f;
  }
  return sum;
}

McfResult SolveMcfSimplex(const McfInstance& instance, const SimplexOptions& options) {
  McfResult result;
  result.flow.resize(static_cast<size_t>(instance.num_commodities()));

  LpProblem lp;
  // One variable per (commodity, path).
  std::vector<std::vector<int>> var(static_cast<size_t>(instance.num_commodities()));
  for (int c = 0; c < instance.num_commodities(); ++c) {
    const McfCommodity& com = instance.commodities[static_cast<size_t>(c)];
    var[static_cast<size_t>(c)].resize(com.paths.size());
    result.flow[static_cast<size_t>(c)].assign(com.paths.size(), 0.0);
    for (size_t p = 0; p < com.paths.size(); ++p) {
      var[static_cast<size_t>(c)][p] = lp.AddVariable(/*objective=*/1.0);
    }
  }
  // Link capacity rows.
  std::vector<std::vector<LpTerm>> link_terms(static_cast<size_t>(instance.num_links()));
  for (int c = 0; c < instance.num_commodities(); ++c) {
    const McfCommodity& com = instance.commodities[static_cast<size_t>(c)];
    for (size_t p = 0; p < com.paths.size(); ++p) {
      for (int l : com.paths[p].links) {
        BDS_CHECK(l >= 0 && l < instance.num_links());
        link_terms[static_cast<size_t>(l)].push_back(
            {var[static_cast<size_t>(c)][p], 1.0});
      }
    }
  }
  for (int l = 0; l < instance.num_links(); ++l) {
    if (!link_terms[static_cast<size_t>(l)].empty()) {
      lp.AddConstraint(link_terms[static_cast<size_t>(l)], Relation::kLessEqual,
                       instance.capacities[static_cast<size_t>(l)]);
    }
  }
  // Demand rows.
  for (int c = 0; c < instance.num_commodities(); ++c) {
    const McfCommodity& com = instance.commodities[static_cast<size_t>(c)];
    if (com.demand >= 0.0 && !com.paths.empty()) {
      std::vector<LpTerm> terms;
      for (size_t p = 0; p < com.paths.size(); ++p) {
        terms.push_back({var[static_cast<size_t>(c)][p], 1.0});
      }
      lp.AddConstraint(std::move(terms), Relation::kLessEqual, com.demand);
    }
  }

  LpSolution sol = SolveSimplex(lp, options);
  if (!sol.optimal()) {
    return result;  // ok stays false.
  }
  result.ok = true;
  result.total_flow = sol.objective_value;
  for (int c = 0; c < instance.num_commodities(); ++c) {
    for (size_t p = 0; p < result.flow[static_cast<size_t>(c)].size(); ++p) {
      result.flow[static_cast<size_t>(c)][p] =
          std::max(0.0, sol.values[static_cast<size_t>(var[static_cast<size_t>(c)][p])]);
    }
  }
  return result;
}

namespace {

// Shared flattened form of an McfInstance: paths with one virtual "demand
// edge" appended per capped commodity so demands reduce to ordinary
// capacities (standard reduction). Dead paths (through a zero-capacity edge)
// are dropped here so both solvers see the same path set.
struct FlatPath {
  int commodity;
  int path_index;
  std::vector<int> links;  // Includes the virtual demand edge if any.
};

struct FlatMcf {
  std::vector<double> cap;
  std::vector<FlatPath> paths;
  // Flattened path ids grouped by commodity, in path order.
  std::vector<std::vector<int>> commodity_paths;
  size_t max_len = 1;

  size_t num_edges() const { return cap.size(); }
};

FlatMcf FlattenMcf(const McfInstance& instance) {
  FlatMcf flat;
  flat.cap = instance.capacities;
  for (int c = 0; c < instance.num_commodities(); ++c) {
    const McfCommodity& com = instance.commodities[static_cast<size_t>(c)];
    int demand_edge = -1;
    if (com.demand >= 0.0) {
      demand_edge = static_cast<int>(flat.cap.size());
      flat.cap.push_back(com.demand);
    }
    for (size_t p = 0; p < com.paths.size(); ++p) {
      FlatPath fp;
      fp.commodity = c;
      fp.path_index = static_cast<int>(p);
      const std::vector<int>& links = com.paths[p].links;
      fp.links.reserve(links.size() + (demand_edge >= 0 ? 1 : 0));
      fp.links.insert(fp.links.end(), links.begin(), links.end());
      if (demand_edge >= 0) {
        fp.links.push_back(demand_edge);
      }
      // Paths through a zero-capacity edge can carry nothing.
      bool dead = false;
      for (int l : fp.links) {
        if (flat.cap[static_cast<size_t>(l)] <= 0.0) {
          dead = true;
          break;
        }
      }
      if (!dead && !fp.links.empty()) {
        flat.paths.push_back(std::move(fp));
      }
    }
  }
  flat.commodity_paths.resize(static_cast<size_t>(instance.num_commodities()));
  for (size_t i = 0; i < flat.paths.size(); ++i) {
    flat.commodity_paths[static_cast<size_t>(flat.paths[i].commodity)].push_back(
        static_cast<int>(i));
    flat.max_len = std::max(flat.max_len, flat.paths[i].links.size());
  }
  return flat;
}

// Push-count cap shared by both solvers (bounds a wedged multiplicative-
// weights loop; generous against the theoretical phase bound).
int64_t MaxPushes(const FlatMcf& flat, double epsilon, double delta) {
  return static_cast<int64_t>(4.0 * static_cast<double>(flat.num_edges()) *
                              std::log((1.0 + epsilon) / delta) / std::log(1.0 + epsilon)) +
         1024;
}

// Theoretical scaling, then exact feasibility normalization: divide by the
// worst edge utilization so no capacity or demand is exceeded. The
// multiplicative-weights dynamics keep utilizations balanced, so the
// normalization costs little (the property tests assert (1 - 3 eps)
// optimality against the exact simplex solution). Finishes with greedy
// augmentation: top up each path with whatever residual capacity remains
// along it, recovering the volume the normalization gave away and making the
// final flow maximal (no augmenting path remains).
void FinalizeFptas(const FlatMcf& flat, double epsilon, double delta,
                   std::vector<double>& raw_flow, McfResult& result) {
  const size_t num_edges = flat.num_edges();
  const std::vector<double>& cap = flat.cap;
  const std::vector<FlatPath>& paths = flat.paths;

  const double scale = std::log((1.0 + epsilon) / delta) / std::log(1.0 + epsilon);
  BDS_CHECK(scale > 0.0);
  for (double& f : raw_flow) {
    f /= scale;
  }
  std::vector<double> load(num_edges, 0.0);
  for (size_t i = 0; i < paths.size(); ++i) {
    for (int l : paths[i].links) {
      load[static_cast<size_t>(l)] += raw_flow[i];
    }
  }
  double worst = 1.0;
  for (size_t l = 0; l < num_edges; ++l) {
    if (cap[l] > 0.0) {
      worst = std::max(worst, load[l] / cap[l]);
    }
  }
  for (size_t i = 0; i < paths.size(); ++i) {
    raw_flow[i] /= worst;
  }
  for (size_t l = 0; l < num_edges; ++l) {
    load[l] /= worst;
  }

  for (int round = 0; round < 2; ++round) {
    for (size_t i = 0; i < paths.size(); ++i) {
      double slack = std::numeric_limits<double>::infinity();
      for (int l : paths[i].links) {
        slack = std::min(slack, cap[static_cast<size_t>(l)] - load[static_cast<size_t>(l)]);
      }
      if (slack > kFluidEpsilon) {
        raw_flow[i] += slack;
        for (int l : paths[i].links) {
          load[static_cast<size_t>(l)] += slack;
        }
      }
    }
  }

  for (size_t i = 0; i < paths.size(); ++i) {
    result.flow[static_cast<size_t>(paths[i].commodity)][static_cast<size_t>(paths[i].path_index)] =
        raw_flow[i];
    result.total_flow += raw_flow[i];
  }
}

McfResult MakeEmptyFptasResult(const McfInstance& instance) {
  McfResult result;
  result.flow.resize(static_cast<size_t>(instance.num_commodities()));
  for (int c = 0; c < instance.num_commodities(); ++c) {
    result.flow[static_cast<size_t>(c)].assign(
        instance.commodities[static_cast<size_t>(c)].paths.size(), 0.0);
  }
  return result;
}

double FptasDelta(const FlatMcf& flat, double epsilon) {
  // Garg–Könemann initialization.
  return (1.0 + epsilon) *
         std::pow((1.0 + epsilon) * static_cast<double>(flat.num_edges()), -1.0 / epsilon);
}

}  // namespace

McfResult SolveMcfFptasReference(const McfInstance& instance, double epsilon) {
  BDS_CHECK_MSG(epsilon > 0.0 && epsilon <= 0.5, "epsilon must be in (0, 0.5]");
  BDS_TIMED_SCOPE("fptas.reference");
  McfResult result = MakeEmptyFptasResult(instance);
  const FlatMcf flat = FlattenMcf(instance);
  const std::vector<double>& cap = flat.cap;
  const std::vector<FlatPath>& paths = flat.paths;
  result.ok = true;
  if (paths.empty()) {
    return result;  // Nothing can flow.
  }

  const size_t num_edges = flat.num_edges();
  const double delta = FptasDelta(flat, epsilon);
  std::vector<double> length(num_edges);
  for (size_t l = 0; l < num_edges; ++l) {
    length[l] = delta / cap[l];
  }
  std::vector<double> raw_flow(paths.size(), 0.0);

  auto path_length = [&](const FlatPath& p) {
    double s = 0.0;
    for (int l : p.links) {
      s += length[static_cast<size_t>(l)];
    }
    return s;
  };

  // Fleischer's phase structure [17]: instead of a global shortest-path
  // search per push (Garg-Koenemann), iterate the commodities round-robin
  // against a threshold alpha that grows by (1 + eps) per phase. A
  // commodity keeps pushing along its cheapest path while that path is
  // shorter than min(1, alpha * (1 + eps)); when every commodity's cheapest
  // path reaches 1 the algorithm stops.
  const int64_t max_pushes = MaxPushes(flat, epsilon, delta);
  int64_t pushes = 0;
  int64_t phases = 0;
  double alpha = delta * static_cast<double>(flat.max_len);
  while (alpha < 1.0 && pushes < max_pushes) {
    ++phases;
    double threshold = std::min(1.0, alpha * (1.0 + epsilon));
    for (size_t c = 0; c < flat.commodity_paths.size() && pushes < max_pushes; ++c) {
      for (;;) {
        // Cheapest of this commodity's paths.
        int best = -1;
        double best_len = threshold;
        for (int pi : flat.commodity_paths[c]) {
          double len = path_length(paths[static_cast<size_t>(pi)]);
          if (len < best_len) {
            best_len = len;
            best = pi;
          }
        }
        if (best < 0) {
          break;  // Nothing under the threshold; next commodity.
        }
        const FlatPath& p = paths[static_cast<size_t>(best)];
        double bottleneck = std::numeric_limits<double>::infinity();
        for (int l : p.links) {
          bottleneck = std::min(bottleneck, cap[static_cast<size_t>(l)]);
        }
        raw_flow[static_cast<size_t>(best)] += bottleneck;
        for (int l : p.links) {
          length[static_cast<size_t>(l)] *=
              1.0 + epsilon * bottleneck / cap[static_cast<size_t>(l)];
        }
        if (++pushes >= max_pushes) {
          break;
        }
      }
    }
    alpha *= 1.0 + epsilon;
  }

  BDS_TELEMETRY_COUNT("fptas.reference.solves", 1);
  BDS_TELEMETRY_COUNT("fptas.reference.pushes", pushes);
  BDS_TELEMETRY_COUNT("fptas.reference.phases", phases);
  telemetry::TraceInstant("fptas.reference", "lp",
                          {{"commodities", static_cast<double>(flat.commodity_paths.size())},
                           {"paths", static_cast<double>(paths.size())},
                           {"pushes", static_cast<double>(pushes)},
                           {"phases", static_cast<double>(phases)}});
  FinalizeFptas(flat, epsilon, delta, raw_flow, result);
  return result;
}

McfResult SolveMcfFptas(const McfInstance& instance, double epsilon) {
  BDS_CHECK_MSG(epsilon > 0.0 && epsilon <= 0.5, "epsilon must be in (0, 0.5]");
  BDS_TIMED_SCOPE("fptas.solve");
  McfResult result = MakeEmptyFptasResult(instance);
  const FlatMcf flat = FlattenMcf(instance);
  const std::vector<double>& cap = flat.cap;
  const std::vector<FlatPath>& paths = flat.paths;
  result.ok = true;
  if (paths.empty()) {
    return result;  // Nothing can flow.
  }

  const size_t num_edges = flat.num_edges();
  const size_t num_paths = paths.size();
  const size_t num_commodities = flat.commodity_paths.size();
  const double delta = FptasDelta(flat, epsilon);
  // One slot past the real edges is the sentinel padding edge: length 0.0,
  // never multiplied, used by the unrolled scans below.
  std::vector<double> length(num_edges + 1, 0.0);
  for (size_t l = 0; l < num_edges; ++l) {
    length[l] = delta / cap[l];
  }
  std::vector<double> raw_flow(num_paths, 0.0);

  // Incremental machinery. The reference loop spends its time on three
  // redundancies: it recomputes every commodity's path lengths every phase
  // even when nothing changed, it re-derives each path's (static) bottleneck
  // capacity on every push, and it performs a division per link per push for
  // the (equally static) weight multiplier. All three are precomputed here:
  //
  //  * CSR layout — every path's links live in one contiguous array
  //    (path_links/path_off), as do each commodity's path ids
  //    (cp_ids/cp_off), so the hot scans are linear.
  //  * path_bneck / path_factor — a path's bottleneck is min capacity over
  //    its links and its per-link length multiplier is
  //    1 + eps * bottleneck / cap, both invariant across pushes (capacities
  //    never change inside the loop; only lengths do).
  //  * cached_min — a lower bound on each commodity's cheapest-path length
  //    (the exact minimum after a fresh scan, or the shared last-link bound
  //    after a skipped rescan). Lengths only ever grow (every push
  //    multiplies by a factor > 1), so a bound already at or above the phase
  //    threshold proves the current minimum is too, and the whole commodity
  //    is skipped with one compare. A bound at or above 1 retires the
  //    commodity outright (thresholds never exceed 1), shrinking the active
  //    list as the run converges.
  //
  // When a commodity IS consulted, its path lengths are recomputed by fresh
  // scans in link order — the identical floating-point sum the reference
  // computes — so every comparison, push choice, and weight update matches
  // the reference bit for bit. (An earlier draft maintained a link->path
  // inverted index with per-push dirty marking instead; with WAN links
  // shared by thousands of paths it performed billions of mark writes per
  // solve and lost to the reference by 30x.)
  std::vector<int32_t> path_off(num_paths + 1, 0);
  size_t total_links = 0;
  for (size_t i = 0; i < num_paths; ++i) {
    total_links += paths[i].links.size();
    path_off[i + 1] = static_cast<int32_t>(total_links);
  }
  std::vector<int32_t> path_links(total_links);
  std::vector<double> path_factor(total_links);
  std::vector<double> path_bneck(num_paths);
  for (size_t i = 0; i < num_paths; ++i) {
    double bottleneck = std::numeric_limits<double>::infinity();
    for (int l : paths[i].links) {
      bottleneck = std::min(bottleneck, cap[static_cast<size_t>(l)]);
    }
    path_bneck[i] = bottleneck;
    size_t j = static_cast<size_t>(path_off[i]);
    for (int l : paths[i].links) {
      path_links[j] = l;
      path_factor[j] = 1.0 + epsilon * bottleneck / cap[static_cast<size_t>(l)];
      ++j;
    }
  }
  std::vector<int32_t> cp_off(num_commodities + 1, 0);
  std::vector<int32_t> cp_ids;
  cp_ids.reserve(num_paths);
  for (size_t c = 0; c < num_commodities; ++c) {
    for (int pi : flat.commodity_paths[c]) {
      cp_ids.push_back(pi);
    }
    cp_off[c + 1] = static_cast<int32_t>(cp_ids.size());
  }

  // Shared-structure detection. Every commodity RouteBlocks emits shares one
  // uplink (first link), one downlink (second-to-last) and its private demand
  // edge (last link) across all of its paths; only the WAN middle differs.
  // Detecting that shape generically buys two things, both bit-exact:
  //  * the scan hoists the three shared length loads out of the per-path
  //    loop (same values, same addition order, fewer gathers), and
  //  * after a push, the freshly grown shared last-link length is already a
  //    lower bound on every sibling path's sum — a rounded sum of positives
  //    is never below any one addend — so when that bound alone clears the
  //    threshold the confirmation rescan is skipped outright.
  std::vector<int32_t> com_first(num_commodities, -1);
  std::vector<int32_t> com_penult(num_commodities, -1);
  std::vector<int32_t> com_last(num_commodities, -1);
  std::vector<uint8_t> com_structured(num_commodities, 0);
  for (size_t c = 0; c < num_commodities; ++c) {
    bool ok = cp_off[c] != cp_off[c + 1];
    int32_t first = -1, penult = -1, last = -1;
    for (int32_t idx = cp_off[c]; ok && idx < cp_off[c + 1]; ++idx) {
      const int32_t pi = cp_ids[static_cast<size_t>(idx)];
      const int32_t b = path_off[pi], e = path_off[pi + 1];
      if (e - b < 3) {
        ok = false;
        break;
      }
      if (idx == cp_off[c]) {
        first = path_links[static_cast<size_t>(b)];
        penult = path_links[static_cast<size_t>(e - 2)];
        last = path_links[static_cast<size_t>(e - 1)];
      } else if (path_links[static_cast<size_t>(b)] != first ||
                 path_links[static_cast<size_t>(e - 2)] != penult ||
                 path_links[static_cast<size_t>(e - 1)] != last) {
        ok = false;
      }
    }
    if (ok) {
      com_structured[c] = 1;
      com_first[c] = first;
      com_penult[c] = penult;
      com_last[c] = last;
    }
  }
  // Middle segment (everything between the shared first link and shared
  // last two) in CSR form; empty ranges for unstructured commodities' paths.
  std::vector<int32_t> mid_off(num_paths + 1, 0);
  std::vector<int32_t> mid_links;
  mid_links.reserve(total_links);
  for (size_t i = 0; i < num_paths; ++i) {
    if (com_structured[static_cast<size_t>(paths[i].commodity)]) {
      for (int32_t j = path_off[i] + 1; j < path_off[i + 1] - 2; ++j) {
        mid_links.push_back(path_links[static_cast<size_t>(j)]);
      }
    }
    mid_off[i + 1] = static_cast<int32_t>(mid_links.size());
  }

  // Fully unrolled scan kinds for the controller's dominant commodity shapes.
  // A structured commodity whose paths all have at most two middle links gets
  // its middles padded to exactly two slots with a sentinel edge of length
  // 0.0 (one extra slot past the real edges, never multiplied by any push).
  // Adding 0.0 to a positive partial sum is bitwise a no-op under round-to-
  // nearest, so the padded straight-line sum produces the identical double —
  // but the scan becomes branch-free: three independent four-add chains the
  // CPU can overlap, instead of a nested loop with data-dependent trip
  // counts. Commodities with other shapes keep the hoisted or generic loops.
  constexpr uint8_t kGeneric = 0, kStructured = 1, kFast3 = 2, kFast1 = 3;
  const int32_t sentinel = static_cast<int32_t>(num_edges);
  std::vector<uint8_t> com_kind(num_commodities, kGeneric);
  std::vector<int32_t> fm_base(num_commodities, -1);
  std::vector<int32_t> fast_mids;
  fast_mids.reserve(2 * num_paths);
  for (size_t c = 0; c < num_commodities; ++c) {
    if (!com_structured[c]) {
      continue;
    }
    com_kind[c] = kStructured;
    const int32_t pcount = cp_off[c + 1] - cp_off[c];
    if (pcount != 3 && pcount != 1) {
      continue;
    }
    bool small = true;
    for (int32_t idx = cp_off[c]; idx < cp_off[c + 1]; ++idx) {
      const int32_t pi = cp_ids[static_cast<size_t>(idx)];
      if (mid_off[pi + 1] - mid_off[pi] > 2) {
        small = false;
        break;
      }
    }
    if (!small) {
      continue;
    }
    com_kind[c] = pcount == 3 ? kFast3 : kFast1;
    fm_base[c] = static_cast<int32_t>(fast_mids.size());
    for (int32_t idx = cp_off[c]; idx < cp_off[c + 1]; ++idx) {
      const int32_t pi = cp_ids[static_cast<size_t>(idx)];
      for (int32_t j = mid_off[pi]; j < mid_off[pi + 1]; ++j) {
        fast_mids.push_back(mid_links[static_cast<size_t>(j)]);
      }
      for (int32_t pad = mid_off[pi + 1] - mid_off[pi]; pad < 2; ++pad) {
        fast_mids.push_back(sentinel);
      }
    }
  }
  // Padded push rows for the fast kinds: every fast path's links as exactly
  // five (link, factor) slots — shared first, two middles, shared last two —
  // with sentinel slots carrying factor 1.0 (0.0 * 1.0 == +0.0, bitwise).
  // The push becomes five branch-free multiply-stores; each real link is
  // still multiplied exactly once by its exact reference factor.
  std::vector<int32_t> push5_ids(5 * num_paths, sentinel);
  std::vector<double> push5_fac(5 * num_paths, 1.0);
  for (size_t c = 0; c < num_commodities; ++c) {
    if (com_kind[c] != kFast3 && com_kind[c] != kFast1) {
      continue;
    }
    for (int32_t idx = cp_off[c]; idx < cp_off[c + 1]; ++idx) {
      const int32_t pi = cp_ids[static_cast<size_t>(idx)];
      int32_t* ids = push5_ids.data() + 5 * static_cast<size_t>(pi);
      double* fac = push5_fac.data() + 5 * static_cast<size_t>(pi);
      int slot = 0;
      for (int32_t j = path_off[pi]; j < path_off[pi + 1]; ++j, ++slot) {
        // Real width is 3..5; middles shorter than 2 leave sentinel slots in
        // positions 1..2 (already initialized above).
        const int real = path_off[pi + 1] - path_off[pi];
        const int pos = j - path_off[pi];
        const int out = pos == 0 ? 0 : pos >= real - 2 ? pos + (5 - real) : pos;
        ids[out] = path_links[static_cast<size_t>(j)];
        fac[out] = path_factor[static_cast<size_t>(j)];
      }
    }
  }

  std::vector<double> cached_min(num_commodities, 0.0);  // Understates; forces
                                                         // a first fresh scan.
  std::vector<int32_t> active;
  active.reserve(num_commodities);
  for (size_t c = 0; c < num_commodities; ++c) {
    if (cp_off[c] != cp_off[c + 1]) {
      active.push_back(static_cast<int32_t>(c));
    }
  }

  const int64_t max_pushes = MaxPushes(flat, epsilon, delta);
  int64_t pushes = 0;
  // Telemetry accumulators: plain locals bumped in the hot loop, published
  // to the registry once per solve (disabled cost: nothing per iteration).
  int64_t phases = 0;
  int64_t bound_skips = 0;
  double alpha = delta * static_cast<double>(flat.max_len);
  while (alpha < 1.0 && pushes < max_pushes) {
    ++phases;
    const double threshold = std::min(1.0, alpha * (1.0 + epsilon));
    size_t out = 0;
    for (size_t k = 0; k < active.size(); ++k) {
      const int32_t c = active[k];
      if (cached_min[static_cast<size_t>(c)] >= threshold) {
        // Provably nothing to push: the cached minimum understates the
        // current one. Retire the commodity if even thresholds of 1 are
        // out of reach.
        ++bound_skips;
        if (cached_min[static_cast<size_t>(c)] < 1.0) {
          active[out++] = c;
        }
        continue;
      }
      bool retired = false;
      const uint8_t kind = com_kind[static_cast<size_t>(c)];
      const size_t cs = static_cast<size_t>(c);
      // Shared push + post-push bound check for the structured kinds. The
      // push just grew the shared last link (the demand edge in the
      // controller's instances — typically the bottleneck). If its length
      // alone already clears the threshold then so does every sibling path's
      // sum — a rounded sum of positives is never below any one addend — and
      // the confirmation rescan is skipped. The bound also stands in for the
      // cached minimum: it understates the true minimum, which is all the
      // cache's phase-skip compare needs.
      auto push_path = [&](int32_t best) {
        raw_flow[static_cast<size_t>(best)] += path_bneck[static_cast<size_t>(best)];
        for (int32_t j = path_off[best]; j < path_off[best + 1]; ++j) {
          length[static_cast<size_t>(path_links[static_cast<size_t>(j)])] *=
              path_factor[static_cast<size_t>(j)];
        }
      };
      if (kind == kFast3) {
        const double* L = length.data();
        const int32_t f0 = com_first[cs], f1 = com_penult[cs], f2 = com_last[cs];
        const int32_t* fm = fast_mids.data() + fm_base[cs];
        const int32_t p0 = cp_ids[static_cast<size_t>(cp_off[c])];
        const int32_t p1 = cp_ids[static_cast<size_t>(cp_off[c]) + 1];
        const int32_t p2 = cp_ids[static_cast<size_t>(cp_off[c]) + 2];
        for (;;) {
          const double h0 = L[f0], h1 = L[f1], h2 = L[f2];
          double s0 = h0 + L[fm[0]];
          double s1 = h0 + L[fm[2]];
          double s2 = h0 + L[fm[4]];
          s0 += L[fm[1]];
          s1 += L[fm[3]];
          s2 += L[fm[5]];
          s0 += h1;
          s1 += h1;
          s2 += h1;
          s0 += h2;
          s1 += h2;
          s2 += h2;
          double m = s0;
          int32_t best = p0;
          if (s1 < m) {
            m = s1;
            best = p1;
          }
          if (s2 < m) {
            m = s2;
            best = p2;
          }
          if (m >= threshold) {
            cached_min[cs] = m;
            retired = m >= 1.0;
            break;
          }
          raw_flow[static_cast<size_t>(best)] += path_bneck[static_cast<size_t>(best)];
          {
            double* Lw = length.data();
            const int32_t* qi = push5_ids.data() + 5 * static_cast<size_t>(best);
            const double* qf = push5_fac.data() + 5 * static_cast<size_t>(best);
            Lw[qi[0]] *= qf[0];
            Lw[qi[1]] *= qf[1];
            Lw[qi[2]] *= qf[2];
            Lw[qi[3]] *= qf[3];
            Lw[qi[4]] *= qf[4];
          }
          if (++pushes >= max_pushes) {
            break;
          }
          const double lb = L[f2];
          if (lb >= threshold) {
            cached_min[cs] = lb;
            retired = lb >= 1.0;
            ++bound_skips;
            break;
          }
        }
      } else if (kind == kFast1) {
        const double* L = length.data();
        const int32_t f0 = com_first[cs], f1 = com_penult[cs], f2 = com_last[cs];
        const int32_t* fm = fast_mids.data() + fm_base[cs];
        const int32_t p0 = cp_ids[static_cast<size_t>(cp_off[c])];
        for (;;) {
          double s0 = L[f0] + L[fm[0]];
          s0 += L[fm[1]];
          s0 += L[f1];
          s0 += L[f2];
          if (s0 >= threshold) {
            cached_min[cs] = s0;
            retired = s0 >= 1.0;
            break;
          }
          raw_flow[static_cast<size_t>(p0)] += path_bneck[static_cast<size_t>(p0)];
          {
            double* Lw = length.data();
            const int32_t* qi = push5_ids.data() + 5 * static_cast<size_t>(p0);
            const double* qf = push5_fac.data() + 5 * static_cast<size_t>(p0);
            Lw[qi[0]] *= qf[0];
            Lw[qi[1]] *= qf[1];
            Lw[qi[2]] *= qf[2];
            Lw[qi[3]] *= qf[3];
            Lw[qi[4]] *= qf[4];
          }
          if (++pushes >= max_pushes) {
            break;
          }
          const double lb = L[f2];
          if (lb >= threshold) {
            cached_min[cs] = lb;
            retired = lb >= 1.0;
            ++bound_skips;
            break;
          }
        }
      } else {
        const bool structured = kind == kStructured;
        for (;;) {
          // Fresh scan of the commodity's paths, in path then link order —
          // the exact operation sequence (and so the exact doubles) of the
          // reference's rescan. Strict < keeps the first-wins tie-break.
          double m = std::numeric_limits<double>::infinity();
          int32_t best = -1;
          if (structured) {
            const double h0 = length[static_cast<size_t>(com_first[cs])];
            const double h1 = length[static_cast<size_t>(com_penult[cs])];
            const double h2 = length[static_cast<size_t>(com_last[cs])];
            for (int32_t idx = cp_off[c]; idx < cp_off[c + 1]; ++idx) {
              const int32_t pi = cp_ids[static_cast<size_t>(idx)];
              double s = h0;
              for (int32_t j = mid_off[pi]; j < mid_off[pi + 1]; ++j) {
                s += length[static_cast<size_t>(mid_links[static_cast<size_t>(j)])];
              }
              s += h1;
              s += h2;
              if (s < m) {
                m = s;
                best = pi;
              }
            }
          } else {
            for (int32_t idx = cp_off[c]; idx < cp_off[c + 1]; ++idx) {
              const int32_t pi = cp_ids[static_cast<size_t>(idx)];
              double s = 0.0;
              for (int32_t j = path_off[pi]; j < path_off[pi + 1]; ++j) {
                s += length[static_cast<size_t>(path_links[static_cast<size_t>(j)])];
              }
              if (s < m) {
                m = s;
                best = pi;
              }
            }
          }
          if (m >= threshold) {
            cached_min[cs] = m;
            retired = m >= 1.0;
            break;
          }
          push_path(best);
          if (++pushes >= max_pushes) {
            break;
          }
          if (structured) {
            const double lb = length[static_cast<size_t>(com_last[cs])];
            if (lb >= threshold) {
              cached_min[cs] = lb;
              retired = lb >= 1.0;
              ++bound_skips;
              break;
            }
          }
        }
      }
      if (!retired) {
        active[out++] = c;
      }
      if (pushes >= max_pushes) {
        for (size_t k2 = k + 1; k2 < active.size(); ++k2) {
          active[out++] = active[k2];
        }
        break;
      }
    }
    active.resize(out);
    alpha *= 1.0 + epsilon;
  }

  BDS_TELEMETRY_COUNT("fptas.solves", 1);
  BDS_TELEMETRY_COUNT("fptas.pushes", pushes);
  BDS_TELEMETRY_COUNT("fptas.phases", phases);
  BDS_TELEMETRY_COUNT("fptas.bound_skips", bound_skips);
  BDS_TELEMETRY_COUNT("fptas.commodities_retired",
                      static_cast<int64_t>(num_commodities - active.size()));
  telemetry::TraceInstant("fptas.solve", "lp",
                          {{"commodities", static_cast<double>(num_commodities)},
                           {"paths", static_cast<double>(num_paths)},
                           {"pushes", static_cast<double>(pushes)},
                           {"phases", static_cast<double>(phases)}});
  FinalizeFptas(flat, epsilon, delta, raw_flow, result);
  return result;
}


double MaxCapacityViolation(const McfInstance& instance, const McfResult& result) {
  std::vector<double> load(static_cast<size_t>(instance.num_links()), 0.0);
  std::vector<double> commodity_total(static_cast<size_t>(instance.num_commodities()), 0.0);
  for (int c = 0; c < instance.num_commodities(); ++c) {
    const McfCommodity& com = instance.commodities[static_cast<size_t>(c)];
    for (size_t p = 0; p < com.paths.size(); ++p) {
      double f = result.flow[static_cast<size_t>(c)][p];
      commodity_total[static_cast<size_t>(c)] += f;
      for (int l : com.paths[p].links) {
        load[static_cast<size_t>(l)] += f;
      }
    }
  }
  double worst = 0.0;
  for (int l = 0; l < instance.num_links(); ++l) {
    double capacity = instance.capacities[static_cast<size_t>(l)];
    if (capacity <= 0.0) {
      if (load[static_cast<size_t>(l)] > 0.0) {
        worst = std::max(worst, 1.0);
      }
      continue;
    }
    worst = std::max(worst, (load[static_cast<size_t>(l)] - capacity) / capacity);
  }
  for (int c = 0; c < instance.num_commodities(); ++c) {
    double demand = instance.commodities[static_cast<size_t>(c)].demand;
    if (demand >= 0.0 && demand > 0.0) {
      worst = std::max(worst, (commodity_total[static_cast<size_t>(c)] - demand) / demand);
    } else if (demand == 0.0 && commodity_total[static_cast<size_t>(c)] > 0.0) {
      worst = std::max(worst, 1.0);
    }
  }
  return std::max(0.0, worst);
}

}  // namespace bds
