#include "src/lp/mcf.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <queue>
#include <utility>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/lp/lp_problem.h"

namespace bds {

int McfInstance::num_paths() const {
  int n = 0;
  for (const McfCommodity& c : commodities) {
    n += static_cast<int>(c.paths.size());
  }
  return n;
}

double McfResult::CommodityFlow(int c) const {
  double sum = 0.0;
  for (double f : flow[static_cast<size_t>(c)]) {
    sum += f;
  }
  return sum;
}

McfResult SolveMcfSimplex(const McfInstance& instance, const SimplexOptions& options) {
  McfResult result;
  result.flow.resize(static_cast<size_t>(instance.num_commodities()));

  LpProblem lp;
  // One variable per (commodity, path).
  std::vector<std::vector<int>> var(static_cast<size_t>(instance.num_commodities()));
  for (int c = 0; c < instance.num_commodities(); ++c) {
    const McfCommodity& com = instance.commodities[static_cast<size_t>(c)];
    var[static_cast<size_t>(c)].resize(com.paths.size());
    result.flow[static_cast<size_t>(c)].assign(com.paths.size(), 0.0);
    for (size_t p = 0; p < com.paths.size(); ++p) {
      var[static_cast<size_t>(c)][p] = lp.AddVariable(/*objective=*/1.0);
    }
  }
  // Link capacity rows.
  std::vector<std::vector<LpTerm>> link_terms(static_cast<size_t>(instance.num_links()));
  for (int c = 0; c < instance.num_commodities(); ++c) {
    const McfCommodity& com = instance.commodities[static_cast<size_t>(c)];
    for (size_t p = 0; p < com.paths.size(); ++p) {
      for (int l : com.paths[p].links) {
        BDS_CHECK(l >= 0 && l < instance.num_links());
        link_terms[static_cast<size_t>(l)].push_back(
            {var[static_cast<size_t>(c)][p], 1.0});
      }
    }
  }
  for (int l = 0; l < instance.num_links(); ++l) {
    if (!link_terms[static_cast<size_t>(l)].empty()) {
      lp.AddConstraint(link_terms[static_cast<size_t>(l)], Relation::kLessEqual,
                       instance.capacities[static_cast<size_t>(l)]);
    }
  }
  // Demand rows.
  for (int c = 0; c < instance.num_commodities(); ++c) {
    const McfCommodity& com = instance.commodities[static_cast<size_t>(c)];
    if (com.demand >= 0.0 && !com.paths.empty()) {
      std::vector<LpTerm> terms;
      for (size_t p = 0; p < com.paths.size(); ++p) {
        terms.push_back({var[static_cast<size_t>(c)][p], 1.0});
      }
      lp.AddConstraint(std::move(terms), Relation::kLessEqual, com.demand);
    }
  }

  LpSolution sol = SolveSimplex(lp, options);
  if (!sol.optimal()) {
    return result;  // ok stays false.
  }
  result.ok = true;
  result.total_flow = sol.objective_value;
  for (int c = 0; c < instance.num_commodities(); ++c) {
    for (size_t p = 0; p < result.flow[static_cast<size_t>(c)].size(); ++p) {
      result.flow[static_cast<size_t>(c)][p] =
          std::max(0.0, sol.values[static_cast<size_t>(var[static_cast<size_t>(c)][p])]);
    }
  }
  return result;
}

McfResult SolveMcfFptas(const McfInstance& instance, double epsilon) {
  BDS_CHECK_MSG(epsilon > 0.0 && epsilon <= 0.5, "epsilon must be in (0, 0.5]");
  McfResult result;
  result.flow.resize(static_cast<size_t>(instance.num_commodities()));
  for (int c = 0; c < instance.num_commodities(); ++c) {
    result.flow[static_cast<size_t>(c)].assign(
        instance.commodities[static_cast<size_t>(c)].paths.size(), 0.0);
  }

  // Flatten paths; append one virtual "demand edge" per capped commodity so
  // demands reduce to ordinary capacities (standard reduction).
  struct FlatPath {
    int commodity;
    int path_index;
    std::vector<int> links;  // Includes the virtual demand edge if any.
  };
  std::vector<double> cap = instance.capacities;
  std::vector<FlatPath> paths;
  for (int c = 0; c < instance.num_commodities(); ++c) {
    const McfCommodity& com = instance.commodities[static_cast<size_t>(c)];
    int demand_edge = -1;
    if (com.demand >= 0.0) {
      demand_edge = static_cast<int>(cap.size());
      cap.push_back(com.demand);
    }
    for (size_t p = 0; p < com.paths.size(); ++p) {
      FlatPath fp;
      fp.commodity = c;
      fp.path_index = static_cast<int>(p);
      fp.links = com.paths[p].links;
      if (demand_edge >= 0) {
        fp.links.push_back(demand_edge);
      }
      // Paths through a zero-capacity edge can carry nothing.
      bool dead = false;
      for (int l : fp.links) {
        if (cap[static_cast<size_t>(l)] <= 0.0) {
          dead = true;
          break;
        }
      }
      if (!dead && !fp.links.empty()) {
        paths.push_back(std::move(fp));
      }
    }
  }
  result.ok = true;
  if (paths.empty()) {
    return result;  // Nothing can flow.
  }

  const size_t num_edges = cap.size();
  size_t max_len = 1;
  for (const FlatPath& p : paths) {
    max_len = std::max(max_len, p.links.size());
  }

  // Garg–Könemann initialization.
  const double delta =
      (1.0 + epsilon) * std::pow((1.0 + epsilon) * static_cast<double>(num_edges),
                                 -1.0 / epsilon);
  std::vector<double> length(num_edges);
  for (size_t l = 0; l < num_edges; ++l) {
    length[l] = delta / cap[l];
  }
  std::vector<double> raw_flow(paths.size(), 0.0);

  // Group the flattened paths by commodity for Fleischer-style iteration.
  std::vector<std::vector<int>> commodity_paths(static_cast<size_t>(instance.num_commodities()));
  for (size_t i = 0; i < paths.size(); ++i) {
    commodity_paths[static_cast<size_t>(paths[i].commodity)].push_back(static_cast<int>(i));
  }

  auto path_length = [&](const FlatPath& p) {
    double s = 0.0;
    for (int l : p.links) {
      s += length[static_cast<size_t>(l)];
    }
    return s;
  };

  // Fleischer's phase structure [17]: instead of a global shortest-path
  // search per push (Garg-Koenemann), iterate the commodities round-robin
  // against a threshold alpha that grows by (1 + eps) per phase. A
  // commodity keeps pushing along its cheapest path while that path is
  // shorter than min(1, alpha * (1 + eps)); when every commodity's cheapest
  // path reaches 1 the algorithm stops. This keeps all work local to one
  // commodity's (few) paths and is what makes the routing step cheap at the
  // scale of 10^4+ concurrent subtasks.
  const int64_t max_pushes =
      static_cast<int64_t>(4.0 * static_cast<double>(num_edges) *
                           std::log((1.0 + epsilon) / delta) / std::log(1.0 + epsilon)) +
      1024;
  int64_t pushes = 0;
  double alpha = delta * static_cast<double>(max_len);
  while (alpha < 1.0 && pushes < max_pushes) {
    double threshold = std::min(1.0, alpha * (1.0 + epsilon));
    for (size_t c = 0; c < commodity_paths.size() && pushes < max_pushes; ++c) {
      for (;;) {
        // Cheapest of this commodity's paths.
        int best = -1;
        double best_len = threshold;
        for (int pi : commodity_paths[c]) {
          double len = path_length(paths[static_cast<size_t>(pi)]);
          if (len < best_len) {
            best_len = len;
            best = pi;
          }
        }
        if (best < 0) {
          break;  // Nothing under the threshold; next commodity.
        }
        const FlatPath& p = paths[static_cast<size_t>(best)];
        double bottleneck = std::numeric_limits<double>::infinity();
        for (int l : p.links) {
          bottleneck = std::min(bottleneck, cap[static_cast<size_t>(l)]);
        }
        raw_flow[static_cast<size_t>(best)] += bottleneck;
        for (int l : p.links) {
          length[static_cast<size_t>(l)] *=
              1.0 + epsilon * bottleneck / cap[static_cast<size_t>(l)];
        }
        if (++pushes >= max_pushes) {
          break;
        }
      }
    }
    alpha *= 1.0 + epsilon;
  }

  // Theoretical scaling, then exact feasibility normalization: divide by the
  // worst edge utilization so no capacity or demand is exceeded. The
  // multiplicative-weights dynamics keep utilizations balanced, so the
  // normalization costs little (the property tests assert (1 - 3 eps)
  // optimality against the exact simplex solution).
  const double scale = std::log((1.0 + epsilon) / delta) / std::log(1.0 + epsilon);
  BDS_CHECK(scale > 0.0);
  for (double& f : raw_flow) {
    f /= scale;
  }
  std::vector<double> load(num_edges, 0.0);
  for (size_t i = 0; i < paths.size(); ++i) {
    for (int l : paths[i].links) {
      load[static_cast<size_t>(l)] += raw_flow[i];
    }
  }
  double worst = 1.0;
  for (size_t l = 0; l < num_edges; ++l) {
    if (cap[l] > 0.0) {
      worst = std::max(worst, load[l] / cap[l]);
    }
  }
  for (size_t i = 0; i < paths.size(); ++i) {
    raw_flow[i] /= worst;
  }
  for (size_t l = 0; l < num_edges; ++l) {
    load[l] /= worst;
  }

  // Greedy augmentation: top up each path with whatever residual capacity
  // remains along it. Recovers the volume the normalization gave away and
  // makes the final flow maximal (no augmenting path remains).
  for (int round = 0; round < 2; ++round) {
    for (size_t i = 0; i < paths.size(); ++i) {
      double slack = std::numeric_limits<double>::infinity();
      for (int l : paths[i].links) {
        slack = std::min(slack, cap[static_cast<size_t>(l)] - load[static_cast<size_t>(l)]);
      }
      if (slack > kFluidEpsilon) {
        raw_flow[i] += slack;
        for (int l : paths[i].links) {
          load[static_cast<size_t>(l)] += slack;
        }
      }
    }
  }

  for (size_t i = 0; i < paths.size(); ++i) {
    result.flow[static_cast<size_t>(paths[i].commodity)][static_cast<size_t>(paths[i].path_index)] =
        raw_flow[i];
    result.total_flow += raw_flow[i];
  }
  return result;
}

double MaxCapacityViolation(const McfInstance& instance, const McfResult& result) {
  std::vector<double> load(static_cast<size_t>(instance.num_links()), 0.0);
  std::vector<double> commodity_total(static_cast<size_t>(instance.num_commodities()), 0.0);
  for (int c = 0; c < instance.num_commodities(); ++c) {
    const McfCommodity& com = instance.commodities[static_cast<size_t>(c)];
    for (size_t p = 0; p < com.paths.size(); ++p) {
      double f = result.flow[static_cast<size_t>(c)][p];
      commodity_total[static_cast<size_t>(c)] += f;
      for (int l : com.paths[p].links) {
        load[static_cast<size_t>(l)] += f;
      }
    }
  }
  double worst = 0.0;
  for (int l = 0; l < instance.num_links(); ++l) {
    double capacity = instance.capacities[static_cast<size_t>(l)];
    if (capacity <= 0.0) {
      if (load[static_cast<size_t>(l)] > 0.0) {
        worst = std::max(worst, 1.0);
      }
      continue;
    }
    worst = std::max(worst, (load[static_cast<size_t>(l)] - capacity) / capacity);
  }
  for (int c = 0; c < instance.num_commodities(); ++c) {
    double demand = instance.commodities[static_cast<size_t>(c)].demand;
    if (demand >= 0.0 && demand > 0.0) {
      worst = std::max(worst, (commodity_total[static_cast<size_t>(c)] - demand) / demand);
    } else if (demand == 0.0 && commodity_total[static_cast<size_t>(c)] > 0.0) {
      worst = std::max(worst, 1.0);
    }
  }
  return std::max(0.0, worst);
}

}  // namespace bds
