#include "src/lp/mcf.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/lp/lp_problem.h"
#include "src/lp/mcf_internal.h"
#include "src/telemetry/telemetry.h"

namespace bds {

using mcf_internal::FlatMcf;
using mcf_internal::FlatPath;
using mcf_internal::FlattenMcf;
using mcf_internal::FptasWorkspace;

int McfInstance::num_paths() const {
  int n = 0;
  for (const McfCommodity& c : commodities) {
    n += static_cast<int>(c.paths.size());
  }
  return n;
}

double McfResult::CommodityFlow(int c) const {
  double sum = 0.0;
  for (double f : flow[static_cast<size_t>(c)]) {
    sum += f;
  }
  return sum;
}

McfResult SolveMcfSimplex(const McfInstance& instance, const SimplexOptions& options) {
  McfResult result;
  result.flow.resize(static_cast<size_t>(instance.num_commodities()));

  LpProblem lp;
  // One variable per (commodity, path).
  std::vector<std::vector<int>> var(static_cast<size_t>(instance.num_commodities()));
  for (int c = 0; c < instance.num_commodities(); ++c) {
    const McfCommodity& com = instance.commodities[static_cast<size_t>(c)];
    var[static_cast<size_t>(c)].resize(com.paths.size());
    result.flow[static_cast<size_t>(c)].assign(com.paths.size(), 0.0);
    for (size_t p = 0; p < com.paths.size(); ++p) {
      var[static_cast<size_t>(c)][p] = lp.AddVariable(/*objective=*/1.0);
    }
  }
  // Link capacity rows.
  std::vector<std::vector<LpTerm>> link_terms(static_cast<size_t>(instance.num_links()));
  for (int c = 0; c < instance.num_commodities(); ++c) {
    const McfCommodity& com = instance.commodities[static_cast<size_t>(c)];
    for (size_t p = 0; p < com.paths.size(); ++p) {
      for (int l : com.paths[p].links) {
        BDS_CHECK(l >= 0 && l < instance.num_links());
        link_terms[static_cast<size_t>(l)].push_back(
            {var[static_cast<size_t>(c)][p], 1.0});
      }
    }
  }
  for (int l = 0; l < instance.num_links(); ++l) {
    if (!link_terms[static_cast<size_t>(l)].empty()) {
      lp.AddConstraint(link_terms[static_cast<size_t>(l)], Relation::kLessEqual,
                       instance.capacities[static_cast<size_t>(l)]);
    }
  }
  // Demand rows.
  for (int c = 0; c < instance.num_commodities(); ++c) {
    const McfCommodity& com = instance.commodities[static_cast<size_t>(c)];
    if (com.demand >= 0.0 && !com.paths.empty()) {
      std::vector<LpTerm> terms;
      for (size_t p = 0; p < com.paths.size(); ++p) {
        terms.push_back({var[static_cast<size_t>(c)][p], 1.0});
      }
      lp.AddConstraint(std::move(terms), Relation::kLessEqual, com.demand);
    }
  }

  LpSolution sol = SolveSimplex(lp, options);
  if (!sol.optimal()) {
    return result;  // ok stays false.
  }
  result.ok = true;
  result.total_flow = sol.objective_value;
  for (int c = 0; c < instance.num_commodities(); ++c) {
    for (size_t p = 0; p < result.flow[static_cast<size_t>(c)].size(); ++p) {
      result.flow[static_cast<size_t>(c)][p] =
          std::max(0.0, sol.values[static_cast<size_t>(var[static_cast<size_t>(c)][p])]);
    }
  }
  return result;
}

McfResult SolveMcfFptasReference(const McfInstance& instance, double epsilon) {
  BDS_CHECK_MSG(epsilon > 0.0 && epsilon <= 0.5, "epsilon must be in (0, 0.5]");
  BDS_TIMED_SCOPE("fptas.reference");
  McfResult result = mcf_internal::MakeEmptyFptasResult(instance);
  const FlatMcf flat = FlattenMcf(instance);
  const std::vector<double>& cap = flat.cap;
  const std::vector<FlatPath>& paths = flat.paths;
  result.ok = true;
  if (paths.empty()) {
    return result;  // Nothing can flow.
  }

  const size_t num_edges = flat.num_edges();
  const double delta = mcf_internal::FptasDelta(flat, epsilon);
  std::vector<double> length(num_edges);
  for (size_t l = 0; l < num_edges; ++l) {
    length[l] = delta / cap[l];
  }
  std::vector<double> raw_flow(paths.size(), 0.0);

  auto path_length = [&](const FlatPath& p) {
    double s = 0.0;
    for (int l : p.links) {
      s += length[static_cast<size_t>(l)];
    }
    return s;
  };

  // Fleischer's phase structure [17]: instead of a global shortest-path
  // search per push (Garg-Koenemann), iterate the commodities round-robin
  // against a threshold alpha that grows by (1 + eps) per phase. A
  // commodity keeps pushing along its cheapest path while that path is
  // shorter than min(1, alpha * (1 + eps)); when every commodity's cheapest
  // path reaches 1 the algorithm stops.
  const int64_t max_pushes = mcf_internal::MaxPushes(flat, epsilon, delta);
  int64_t pushes = 0;
  int64_t phases = 0;
  double alpha = delta * static_cast<double>(flat.max_len);
  while (alpha < 1.0 && pushes < max_pushes) {
    ++phases;
    double threshold = std::min(1.0, alpha * (1.0 + epsilon));
    for (size_t c = 0; c < flat.commodity_paths.size() && pushes < max_pushes; ++c) {
      for (;;) {
        // Cheapest of this commodity's paths.
        int best = -1;
        double best_len = threshold;
        for (int pi : flat.commodity_paths[c]) {
          double len = path_length(paths[static_cast<size_t>(pi)]);
          if (len < best_len) {
            best_len = len;
            best = pi;
          }
        }
        if (best < 0) {
          break;  // Nothing under the threshold; next commodity.
        }
        const FlatPath& p = paths[static_cast<size_t>(best)];
        double bottleneck = std::numeric_limits<double>::infinity();
        for (int l : p.links) {
          bottleneck = std::min(bottleneck, cap[static_cast<size_t>(l)]);
        }
        raw_flow[static_cast<size_t>(best)] += bottleneck;
        for (int l : p.links) {
          length[static_cast<size_t>(l)] *=
              1.0 + epsilon * bottleneck / cap[static_cast<size_t>(l)];
        }
        if (++pushes >= max_pushes) {
          break;
        }
      }
    }
    alpha *= 1.0 + epsilon;
  }

  BDS_TELEMETRY_COUNT("fptas.reference.solves", 1);
  BDS_TELEMETRY_COUNT("fptas.reference.pushes", pushes);
  BDS_TELEMETRY_COUNT("fptas.reference.phases", phases);
  telemetry::TraceInstant("fptas.reference", "lp",
                          {{"commodities", static_cast<double>(flat.commodity_paths.size())},
                           {"paths", static_cast<double>(paths.size())},
                           {"pushes", static_cast<double>(pushes)},
                           {"phases", static_cast<double>(phases)}});
  mcf_internal::FinalizeFptas(flat, epsilon, delta, raw_flow, result);
  return result;
}

// The tuned solver: Fleischer's phase structure over a flat CSR form with
// incrementally maintained lower bounds. The loop itself lives in
// mcf_internal::RunFptasPushLoop, parameterized by the commodity subset it
// may push for, so the sharded solver (mcf_shard.cc) runs the identical code
// over link-disjoint subsets; here the subset is every commodity. The push
// sequence — and therefore every per-path flow — is bit-identical to
// SolveMcfFptasReference (see the parity property tests): when a commodity
// IS consulted, its path lengths are recomputed by fresh scans in link order
// (the identical floating-point sums), the structured-shape fast kinds only
// reorder provably-equal arithmetic (sentinel adds of 0.0, hoisted shared
// loads), and the cached minimum only skips scans whose outcome is proved.
McfResult SolveMcfFptas(const McfInstance& instance, double epsilon) {
  return SolveMcfFptas(instance, epsilon, nullptr, nullptr);
}

McfResult SolveMcfFptas(const McfInstance& instance, double epsilon, const McfWarmSeed* warm,
                        McfWarmInfo* warm_info) {
  BDS_CHECK_MSG(epsilon > 0.0 && epsilon <= 0.5, "epsilon must be in (0, 0.5]");
  BDS_TIMED_SCOPE("fptas.solve");
  if (warm_info != nullptr) {
    *warm_info = McfWarmInfo{};
  }
  McfResult result = mcf_internal::MakeEmptyFptasResult(instance);
  const FlatMcf flat = FlattenMcf(instance);
  result.ok = true;
  if (flat.paths.empty()) {
    return result;  // Nothing can flow.
  }

  const size_t num_edges = flat.num_edges();
  const double delta = mcf_internal::FptasDelta(flat, epsilon);
  const FptasWorkspace ws(flat, epsilon);
  // One slot past the real edges is the sentinel padding edge: length 0.0,
  // never multiplied by a real factor, used by the workspace's unrolled scans.
  std::vector<double> length;
  std::vector<double> raw_flow;
  mcf_internal::FptasWarmState wstate;
  mcf_internal::FptasLoopControl control;
  const bool use_warm = warm != nullptr && !warm->empty();
  if (use_warm) {
    wstate = mcf_internal::SeedFptasWarmState(instance, flat, ws, epsilon, delta, *warm);
    length = std::move(wstate.length);
    raw_flow = std::move(wstate.raw_flow);
    control.alpha_start = wstate.alpha_start;
    control.cached_min_seed = &wstate.cached_min;
    if (warm_info != nullptr) {
      warm_info->used = wstate.seeded_commodities > 0;
      warm_info->seeded_commodities = wstate.seeded_commodities;
      warm_info->phases_skipped = wstate.phases_skipped;
    }
  } else {
    length.assign(num_edges + 1, 0.0);
    for (size_t l = 0; l < num_edges; ++l) {
      length[l] = delta / flat.cap[l];
    }
    raw_flow.assign(ws.num_paths, 0.0);
  }

  std::vector<int32_t> all_commodities(ws.num_commodities);
  for (size_t c = 0; c < ws.num_commodities; ++c) {
    all_commodities[c] = static_cast<int32_t>(c);
  }
  const int64_t max_pushes = mcf_internal::MaxPushes(flat, epsilon, delta);
  mcf_internal::FptasLoopStats stats =
      mcf_internal::RunFptasPushLoop(flat, ws, epsilon, delta, max_pushes, all_commodities,
                                     length, raw_flow, use_warm ? &control : nullptr);

  BDS_TELEMETRY_COUNT("fptas.solves", 1);
  BDS_TELEMETRY_COUNT("fptas.pushes", stats.pushes);
  BDS_TELEMETRY_COUNT("fptas.phases", stats.phases);
  BDS_TELEMETRY_COUNT("fptas.bound_skips", stats.bound_skips);
  BDS_TELEMETRY_COUNT("fptas.commodities_retired", stats.commodities_retired);
  if (use_warm) {
    BDS_TELEMETRY_COUNT("fptas.warm.solves", 1);
    BDS_TELEMETRY_COUNT("fptas.warm.seeded_commodities", wstate.seeded_commodities);
    BDS_TELEMETRY_COUNT("fptas.warm.phases_skipped", wstate.phases_skipped);
  }
  telemetry::TraceInstant("fptas.solve", "lp",
                          {{"commodities", static_cast<double>(ws.num_commodities)},
                           {"paths", static_cast<double>(ws.num_paths)},
                           {"pushes", static_cast<double>(stats.pushes)},
                           {"phases", static_cast<double>(stats.phases)}});
  mcf_internal::FinalizeFptas(flat, epsilon, delta, raw_flow, result);
  return result;
}

double MaxCapacityViolation(const McfInstance& instance, const McfResult& result) {
  std::vector<double> load(static_cast<size_t>(instance.num_links()), 0.0);
  std::vector<double> commodity_total(static_cast<size_t>(instance.num_commodities()), 0.0);
  for (int c = 0; c < instance.num_commodities(); ++c) {
    const McfCommodity& com = instance.commodities[static_cast<size_t>(c)];
    for (size_t p = 0; p < com.paths.size(); ++p) {
      double f = result.flow[static_cast<size_t>(c)][p];
      commodity_total[static_cast<size_t>(c)] += f;
      for (int l : com.paths[p].links) {
        load[static_cast<size_t>(l)] += f;
      }
    }
  }
  double worst = 0.0;
  for (int l = 0; l < instance.num_links(); ++l) {
    double capacity = instance.capacities[static_cast<size_t>(l)];
    if (capacity <= 0.0) {
      if (load[static_cast<size_t>(l)] > 0.0) {
        worst = std::max(worst, 1.0);
      }
      continue;
    }
    worst = std::max(worst, (load[static_cast<size_t>(l)] - capacity) / capacity);
  }
  for (int c = 0; c < instance.num_commodities(); ++c) {
    double demand = instance.commodities[static_cast<size_t>(c)].demand;
    if (demand >= 0.0 && demand > 0.0) {
      worst = std::max(worst, (commodity_total[static_cast<size_t>(c)] - demand) / demand);
    } else if (demand == 0.0 && commodity_total[static_cast<size_t>(c)] > 0.0) {
      worst = std::max(worst, 1.0);
    }
  }
  return std::max(0.0, worst);
}

}  // namespace bds
