#include "src/lp/mcf_shard.h"

#include <ctime>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/lp/mcf_internal.h"
#include "src/telemetry/telemetry.h"

namespace bds {

namespace {

using mcf_internal::FlatMcf;
using mcf_internal::FptasWorkspace;

double ProcessCpuSeconds() {
  timespec ts;
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) != 0) {
    return 0.0;
  }
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

// Union-find over flat edge ids with path halving; deterministic (no ranks —
// the root is always the smallest-id edge merged first? No: union by
// attaching b's root under a's root, so roots depend only on merge order,
// which is the deterministic path scan order).
struct UnionFind {
  explicit UnionFind(size_t n) : parent(n) {
    std::iota(parent.begin(), parent.end(), 0);
  }
  int Find(int x) {
    while (parent[static_cast<size_t>(x)] != x) {
      parent[static_cast<size_t>(x)] =
          parent[static_cast<size_t>(parent[static_cast<size_t>(x)])];
      x = parent[static_cast<size_t>(x)];
    }
    return x;
  }
  void Union(int a, int b) {
    a = Find(a);
    b = Find(b);
    if (a != b) {
      parent[static_cast<size_t>(b)] = a;
    }
  }
  std::vector<int> parent;
};

struct Group {
  std::vector<int32_t> commodities;  // Ascending global ids.
  int64_t weight = 0;                // Total path-link count (work proxy).
};

}  // namespace

McfResult SolveMcfFptasSharded(const McfInstance& instance, double epsilon,
                               const McfShardOptions& options, ParallelRunner* pool,
                               McfShardStats* stats, const McfWarmSeed* warm,
                               McfWarmInfo* warm_info) {
  BDS_CHECK_MSG(epsilon > 0.0 && epsilon <= 0.5, "epsilon must be in (0, 0.5]");
  BDS_CHECK_MSG(options.num_shards >= 1, "num_shards must be >= 1");
  BDS_TIMED_SCOPE("fptas.sharded");
  McfShardStats local_stats;
  McfShardStats& st = stats != nullptr ? *stats : local_stats;
  st = McfShardStats{};
  if (warm_info != nullptr) {
    *warm_info = McfWarmInfo{};
  }

  McfResult result = mcf_internal::MakeEmptyFptasResult(instance);
  const FlatMcf flat = mcf_internal::FlattenMcf(instance);
  result.ok = true;
  if (flat.paths.empty()) {
    return result;  // Nothing can flow.
  }

  const size_t num_commodities = flat.commodity_paths.size();
  // Per-commodity work weight: its total path-link count (the push loop's
  // scan cost is linear in it).
  std::vector<int64_t> com_weight(num_commodities, 0);
  for (const mcf_internal::FlatPath& p : flat.paths) {
    com_weight[static_cast<size_t>(p.commodity)] +=
        static_cast<int64_t>(p.links.size());
  }

  // Partition commodities into link-disjoint groups. Commodities never
  // sharing an edge (directly or transitively) cannot influence each other's
  // lengths, so their push loops commute — the parity seam.
  std::vector<Group> groups;
  if (options.num_shards <= 1) {
    Group all;
    for (size_t c = 0; c < num_commodities; ++c) {
      if (!flat.commodity_paths[c].empty()) {
        all.commodities.push_back(static_cast<int32_t>(c));
        all.weight += com_weight[c];
      }
    }
    groups.push_back(std::move(all));
    st.num_components = 1;
  } else {
    UnionFind uf(flat.num_edges());
    for (const std::vector<int>& cpaths : flat.commodity_paths) {
      if (cpaths.empty()) {
        continue;
      }
      // Unify every edge of every path of the commodity with its first edge
      // (a capped commodity's demand edge would do this implicitly; uncapped
      // multi-path commodities need the cross-path union too).
      const int anchor = flat.paths[static_cast<size_t>(cpaths[0])].links[0];
      for (int pi : cpaths) {
        for (int l : flat.paths[static_cast<size_t>(pi)].links) {
          uf.Union(anchor, l);
        }
      }
    }
    // Components in order of first appearance over ascending commodity ids.
    std::vector<int> root_to_component(flat.num_edges(), -1);
    struct Component {
      std::vector<int32_t> commodities;
      int64_t weight = 0;
    };
    std::vector<Component> components;
    for (size_t c = 0; c < num_commodities; ++c) {
      if (flat.commodity_paths[c].empty()) {
        continue;
      }
      const int root =
          uf.Find(flat.paths[static_cast<size_t>(flat.commodity_paths[c][0])].links[0]);
      int& comp = root_to_component[static_cast<size_t>(root)];
      if (comp < 0) {
        comp = static_cast<int>(components.size());
        components.emplace_back();
      }
      components[static_cast<size_t>(comp)].commodities.push_back(static_cast<int32_t>(c));
      components[static_cast<size_t>(comp)].weight += com_weight[c];
    }
    st.num_components = static_cast<int>(components.size());

    // Deterministic packing: components by (weight desc, first commodity
    // asc) onto the currently lightest group (ties -> lowest group index).
    const int num_groups =
        std::max(1, std::min<int>(options.num_shards, static_cast<int>(components.size())));
    groups.resize(static_cast<size_t>(num_groups));
    std::vector<int> order(components.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      const Component& ca = components[static_cast<size_t>(a)];
      const Component& cb = components[static_cast<size_t>(b)];
      if (ca.weight != cb.weight) {
        return ca.weight > cb.weight;
      }
      return ca.commodities[0] < cb.commodities[0];
    });
    for (int ci : order) {
      size_t lightest = 0;
      for (size_t g = 1; g < groups.size(); ++g) {
        if (groups[g].weight < groups[lightest].weight) {
          lightest = g;
        }
      }
      Component& comp = components[static_cast<size_t>(ci)];
      groups[lightest].commodities.insert(groups[lightest].commodities.end(),
                                          comp.commodities.begin(), comp.commodities.end());
      groups[lightest].weight += comp.weight;
    }
    // The push loop consults a group's commodities in list order; ascending
    // ids reproduce the unsharded solver's round-robin order within the
    // group (required for parity).
    for (Group& g : groups) {
      std::sort(g.commodities.begin(), g.commodities.end());
    }

    if (options.split_contended) {
      // Contended instances collapse into few giant components; split the
      // heaviest groups into contiguous commodity ranges until every shard
      // has work. Each piece runs against the full capacities and the merge
      // normalization restores feasibility — deterministic, but no longer
      // bitwise-equal to the unsharded solve.
      int64_t total_weight = 0;
      for (const Group& g : groups) {
        total_weight += g.weight;
      }
      const int64_t target = total_weight / options.num_shards + 1;
      while (static_cast<int>(groups.size()) < options.num_shards) {
        size_t heaviest = 0;
        for (size_t g = 1; g < groups.size(); ++g) {
          if (groups[g].weight > groups[heaviest].weight) {
            heaviest = g;
          }
        }
        Group& heavy = groups[heaviest];
        if (heavy.weight <= target || heavy.commodities.size() < 2) {
          break;
        }
        // Split at the weight midpoint, keeping both halves contiguous (and
        // therefore ascending).
        Group tail;
        int64_t acc = 0;
        size_t cut = 1;
        for (; cut < heavy.commodities.size(); ++cut) {
          acc += com_weight[static_cast<size_t>(heavy.commodities[cut - 1])];
          if (acc * 2 >= heavy.weight) {
            break;
          }
        }
        tail.commodities.assign(heavy.commodities.begin() + static_cast<ptrdiff_t>(cut),
                                heavy.commodities.end());
        heavy.commodities.resize(cut);
        tail.weight = heavy.weight - acc;
        heavy.weight = acc;
        groups.push_back(std::move(tail));
        st.split_mode_used = true;
      }
    }
  }
  st.num_groups = static_cast<int>(groups.size());

  // Shared constants and workspace: all derived from the GLOBAL flat
  // instance, so every group walks the same delta / alpha ladder / factor
  // tables the unsharded solver would.
  const double delta = mcf_internal::FptasDelta(flat, epsilon);
  const int64_t max_pushes = options.max_pushes_override > 0
                                 ? options.max_pushes_override
                                 : mcf_internal::MaxPushes(flat, epsilon, delta);
  const FptasWorkspace ws(flat, epsilon);

  // Warm start: seed raw flow / lengths / cached minima / the alpha-ladder
  // entry ONCE from the global instance. Every group starts from a private
  // copy of the seeded length vector, so (without split_contended) the warm
  // result stays bitwise-invariant to the shard count.
  const bool use_warm = warm != nullptr && !warm->empty();
  mcf_internal::FptasWarmState wstate;
  if (use_warm) {
    wstate = mcf_internal::SeedFptasWarmState(instance, flat, ws, epsilon, delta, *warm);
    st.seeded_commodities = wstate.seeded_commodities;
    st.phases_skipped = wstate.phases_skipped;
    if (warm_info != nullptr) {
      warm_info->used = wstate.seeded_commodities > 0;
      warm_info->seeded_commodities = wstate.seeded_commodities;
      warm_info->phases_skipped = wstate.phases_skipped;
    }
  }
  auto init_length = [&](std::vector<double>& length) {
    if (use_warm) {
      length = wstate.length;
      return;
    }
    length.assign(ws.num_edges + 1, 0.0);
    for (size_t l = 0; l < ws.num_edges; ++l) {
      length[l] = delta / flat.cap[l];
    }
  };

  std::vector<double> raw_flow(ws.num_paths, 0.0);
  std::vector<mcf_internal::FptasLoopStats> group_stats(groups.size());
  int largest_paths = 0;
  for (const Group& g : groups) {
    int paths = 0;
    for (int32_t c : g.commodities) {
      paths += ws.cp_off[static_cast<size_t>(c) + 1] - ws.cp_off[static_cast<size_t>(c)];
    }
    largest_paths = std::max(largest_paths, paths);
  }
  st.largest_group_paths = largest_paths;

  // Cross-group advisory budget: once the groups' summed pushes reach the
  // global cap the run is wedged (the deterministic predicate checked after
  // the join below), its result will be discarded, and the remaining groups
  // only burn CPU — so they may abort early. The abort can only fire when
  // the predicate is already guaranteed true, so results never depend on its
  // timing (see FptasLoopControl).
  std::atomic<int64_t> shared_pushes{0};
  const double t_solve = ProcessCpuSeconds();
  auto solve_group = [&](size_t begin, size_t end) {
    for (size_t g = begin; g < end; ++g) {
      // Private length vector per group (plus the sentinel slot, pinned to
      // 0.0): initialized exactly like the unsharded solver's, and since the
      // group's commodities are link-disjoint from every other group's (in
      // parity mode), the entries it reads evolve identically to the global
      // run's.
      std::vector<double> length;
      init_length(length);
      mcf_internal::FptasLoopControl control;
      if (use_warm) {
        control.alpha_start = wstate.alpha_start;
        control.cached_min_seed = &wstate.cached_min;
      }
      if (groups.size() > 1) {
        control.shared_pushes = &shared_pushes;
        control.shared_max_pushes = max_pushes;
      }
      group_stats[g] = mcf_internal::RunFptasPushLoop(flat, ws, epsilon, delta, max_pushes,
                                                      groups[g].commodities, length, raw_flow,
                                                      &control);
    }
  };
  if (pool != nullptr && pool->num_threads() > 1 && groups.size() > 1) {
    std::vector<int64_t> weights(groups.size());
    for (size_t g = 0; g < groups.size(); ++g) {
      weights[g] = groups[g].weight;
    }
    pool->ForWeighted(weights, solve_group);
  } else {
    solve_group(0, groups.size());
  }

  for (const mcf_internal::FptasLoopStats& gs : group_stats) {
    st.pushes += gs.pushes;
  }

  // Wedge re-run: the per-group budget is counted per call, so a multi-group
  // run whose SUMMED pushes reach the global cap may have cut off at
  // different pushes than the unsharded loop would. Such runs are discarded
  // and redone as one serial all-commodity loop — the exact unsharded
  // (cold or warm) solve, bit for bit. Never taken outside adversarial
  // inputs or a tiny max_pushes_override.
  if (groups.size() > 1 && st.pushes >= max_pushes) {
    st.wedge_rerun = true;
    std::fill(raw_flow.begin(), raw_flow.end(), 0.0);
    std::vector<int32_t> all_commodities;
    all_commodities.reserve(num_commodities);
    for (size_t c = 0; c < num_commodities; ++c) {
      if (!flat.commodity_paths[c].empty()) {
        all_commodities.push_back(static_cast<int32_t>(c));
      }
    }
    std::vector<double> length;
    init_length(length);
    mcf_internal::FptasLoopControl control;
    if (use_warm) {
      control.alpha_start = wstate.alpha_start;
      control.cached_min_seed = &wstate.cached_min;
    }
    const mcf_internal::FptasLoopStats rerun = mcf_internal::RunFptasPushLoop(
        flat, ws, epsilon, delta, max_pushes, all_commodities, length, raw_flow, &control);
    st.pushes = rerun.pushes;
  }
  const double t_merge = ProcessCpuSeconds();
  st.solve_seconds = t_merge - t_solve;

  // The merge: one global finalize over the combined raw flow — rescale,
  // normalize by the worst edge utilization (per-link proportional budget
  // split; order-independent), then the two greedy augmentation rounds in
  // global path order (the bounded rebalance of under-used links).
  mcf_internal::FinalizeFptas(flat, epsilon, delta, raw_flow, result);
  st.merge_seconds = ProcessCpuSeconds() - t_merge;

  BDS_TELEMETRY_COUNT("fptas.sharded.solves", 1);
  BDS_TELEMETRY_COUNT("fptas.sharded.pushes", st.pushes);
  BDS_TELEMETRY_COUNT("fptas.sharded.groups", st.num_groups);
  BDS_TELEMETRY_COUNT("fptas.sharded.components", st.num_components);
  if (st.wedge_rerun) {
    BDS_TELEMETRY_COUNT("fptas.sharded.wedge_reruns", 1);
  }
  if (use_warm) {
    BDS_TELEMETRY_COUNT("fptas.warm.solves", 1);
    BDS_TELEMETRY_COUNT("fptas.warm.seeded_commodities", st.seeded_commodities);
    BDS_TELEMETRY_COUNT("fptas.warm.phases_skipped", st.phases_skipped);
  }
  telemetry::TraceInstant("fptas.sharded", "lp",
                          {{"groups", static_cast<double>(st.num_groups)},
                           {"components", static_cast<double>(st.num_components)},
                           {"pushes", static_cast<double>(st.pushes)}});
  return result;
}

}  // namespace bds
