// Shared internals of the Fleischer/Garg–Könemann FPTAS solvers.
//
// SolveMcfFptas, SolveMcfFptasReference, and SolveMcfFptasSharded all run the
// same multiplicative-weights dynamics over the same flattened instance; this
// header exposes the pieces they share so the sharded solver (mcf_shard.cc)
// can be bit-compatible with the global one by construction:
//
//  * FlatMcf / FlattenMcf — the flattened form (demands reduced to virtual
//    edges, dead paths dropped). Every derived constant of the algorithm —
//    delta, the alpha phase ladder, the push budget, the finalize scale —
//    is a function of THIS struct, so two solvers sharing one FlatMcf share
//    the exact numeric trajectory.
//  * FptasWorkspace — the CSR layout + structured-shape acceleration tables
//    of the tuned solver, precomputed once per instance.
//  * RunFptasPushLoop — the tuned phase loop, parameterized by the commodity
//    subset it may push for. Restricted to a subset whose paths are
//    link-disjoint from every other subset's, the loop performs the
//    identical push sequence (same doubles, same order per commodity) as the
//    full run, because no outside push can touch the lengths it reads. That
//    property is what makes per-shard solves mergeable without any epsilon
//    of divergence (see DESIGN.md "Sharded controller").
//  * FinalizeFptas — theoretical rescale + global feasibility normalization
//    + two greedy augmentation rounds. In the sharded solver this IS the
//    merge step: it enforces the global capacity budget over the combined
//    raw flow and rebalances slack, and it is a pure function of (flat,
//    raw_flow) — order-independent of how the raw flow was produced.
//
// Everything here is an implementation detail: no stability promised.

#ifndef BDS_SRC_LP_MCF_INTERNAL_H_
#define BDS_SRC_LP_MCF_INTERNAL_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/common/huge_alloc.h"
#include "src/lp/mcf.h"

namespace bds {
namespace mcf_internal {

// Flattened form of an McfInstance: paths with one virtual "demand edge"
// appended per capped commodity so demands reduce to ordinary capacities
// (standard reduction). Dead paths (through a zero-capacity edge) are
// dropped here so every solver sees the same path set.
struct FlatPath {
  int commodity;
  int path_index;
  std::vector<int> links;  // Includes the virtual demand edge if any.
};

struct FlatMcf {
  std::vector<double> cap;
  std::vector<FlatPath> paths;
  // Flattened path ids grouped by commodity, in path order.
  std::vector<std::vector<int>> commodity_paths;
  size_t max_len = 1;

  size_t num_edges() const { return cap.size(); }
};

FlatMcf FlattenMcf(const McfInstance& instance);

// Garg–Könemann initialization; depends on the GLOBAL edge count, which is
// why per-shard solves must share the global FlatMcf rather than flatten
// their own slice.
double FptasDelta(const FlatMcf& flat, double epsilon);

// Push-count cap shared by the solvers (bounds a wedged multiplicative-
// weights loop; generous against the theoretical phase bound).
int64_t MaxPushes(const FlatMcf& flat, double epsilon, double delta);

// An all-zero result shaped like `instance` (ok stays false).
McfResult MakeEmptyFptasResult(const McfInstance& instance);

// Theoretical scaling, then exact feasibility normalization: divide by the
// worst edge utilization so no capacity or demand is exceeded, then top each
// path up with its residual slack (two greedy rounds in global path order),
// making the final flow maximal. Scatters into `result` and accumulates
// total_flow.
void FinalizeFptas(const FlatMcf& flat, double epsilon, double delta,
                   std::vector<double>& raw_flow, McfResult& result);

// Precomputed acceleration tables for RunFptasPushLoop (the tuned solver's
// CSR layout, per-path bottlenecks/factors, structured-shape detection and
// padded fast rows). Pure function of (flat, epsilon); read-only during the
// loop, so one workspace serves any number of concurrent per-shard loops.
// The CSR buffers are HugeVectors: at the fleet scale the push loop streams
// them every phase, and transparent hugepages cut the TLB pressure; on
// kernels without anon THP the allocator falls back silently.
struct FptasWorkspace {
  FptasWorkspace(const FlatMcf& flat, double epsilon);

  size_t num_edges = 0;
  size_t num_paths = 0;
  size_t num_commodities = 0;
  // CSR: path i's links at path_links[path_off[i] .. path_off[i+1]).
  HugeVector<int32_t> path_off;
  HugeVector<int32_t> path_links;
  HugeVector<double> path_factor;  // Per-link length multiplier of a push.
  HugeVector<double> path_bneck;   // Static bottleneck capacity per path.
  // CSR: commodity c's path ids at cp_ids[cp_off[c] .. cp_off[c+1]).
  HugeVector<int32_t> cp_off;
  HugeVector<int32_t> cp_ids;
  // Structured-shape tables (shared first/penultimate/last links; see
  // SolveMcfFptas's commentary).
  HugeVector<int32_t> com_first;
  HugeVector<int32_t> com_penult;
  HugeVector<int32_t> com_last;
  HugeVector<uint8_t> com_kind;  // kGeneric/kStructured/kFast3/kFast1.
  HugeVector<int32_t> mid_off;
  HugeVector<int32_t> mid_links;
  HugeVector<int32_t> fm_base;
  HugeVector<int32_t> fast_mids;
  HugeVector<int32_t> push5_ids;
  HugeVector<double> push5_fac;

  static constexpr uint8_t kGeneric = 0, kStructured = 1, kFast3 = 2, kFast1 = 3;
};

struct FptasLoopStats {
  int64_t pushes = 0;
  int64_t phases = 0;
  int64_t bound_skips = 0;
  int64_t commodities_retired = 0;
};

// Optional controls for RunFptasPushLoop. Defaults reproduce the classic
// cold loop exactly; warm starts and the sharded solver's cross-group push
// accounting hook in here.
struct FptasLoopControl {
  // Alpha-ladder entry point. <= 0 starts cold at delta * flat.max_len; a
  // warm start passes a grid-aligned value (delta * max_len * (1+eps)^k)
  // computed by SeedFptasWarmState so every skipped phase is provably a
  // no-op under the seeded lengths.
  double alpha_start = -1.0;
  // Per-GLOBAL-commodity-id seed for the loop's cached minima (must
  // lower-bound — or equal — the commodity's current cheapest path length
  // under the caller's `length`). nullptr: cold init to 0.0, which forces a
  // first fresh scan per commodity.
  const std::vector<double>* cached_min_seed = nullptr;
  // Cross-group advisory push budget (sharded solver): every ~1024 pushes
  // the loop adds its delta to `shared_pushes`; once the shared total
  // reaches `shared_max_pushes` the loop cuts off exactly like its own
  // max_pushes cap. Purely an early-abort for runs the sharded solver will
  // discard and redo serially (the wedge path) — it can only fire when the
  // deterministic wedge predicate is already guaranteed true, so results
  // never depend on its timing. nullptr disables.
  std::atomic<int64_t>* shared_pushes = nullptr;
  int64_t shared_max_pushes = 0;
};

// Seeded multiplicative-weights state reconstructed from a previous solve's
// finalized flows (see SeedFptasWarmState).
struct FptasWarmState {
  std::vector<double> length;      // num_edges + 1 (sentinel pinned to 0.0).
  std::vector<double> raw_flow;    // num_paths, pre-scale units.
  std::vector<double> cached_min;  // Per-commodity min path length at seed.
  double alpha_start = -1.0;
  int64_t seeded_commodities = 0;
  int64_t phases_skipped = 0;
};

// Builds the warm-start state for a solve of `instance`: per-path raw flow
// re-scaled from the finalized seed (clamped per commodity to the CURRENT
// demand), edge lengths reconstructed consistently from that raw flow
// (length[e] = delta/cap[e] * exp(sum_i (raw_i/bneck_i) * ln(factor_i,e)) —
// exactly the length a push sequence totalling raw would have produced,
// demand edges included uniformly), per-commodity cached minima equal to the
// seeded fresh-scan results, and the furthest alpha-ladder entry whose
// skipped phases provably push nothing (alpha advanced by iterated
// (1+eps) multiplication, mirroring the loop's own ladder bit for bit).
// Pure function of its inputs — shard- and thread-count invariant.
FptasWarmState SeedFptasWarmState(const McfInstance& instance, const FlatMcf& flat,
                                  const FptasWorkspace& ws, double epsilon, double delta,
                                  const McfWarmSeed& warm);

// The tuned Fleischer phase loop over the commodities in `commodities`
// (ascending global ids; commodities without paths are skipped). Reads and
// multiplies `length` (size flat.num_edges() + 1; the last slot is the
// sentinel padding edge and must be 0.0) and accumulates into `raw_flow`
// (size flat.num_paths(); only the subset's paths are touched). delta and
// max_pushes must come from the global flat (FptasDelta / MaxPushes).
//
// Determinism/parity contract: with `commodities` = all commodities this is
// exactly SolveMcfFptas's loop. With a strict subset whose paths are
// link-disjoint from the complement's, the loop's pushes are bit-identical
// to the corresponding pushes of the full run (the only state coupling
// between commodities is shared link lengths). max_pushes is counted per
// call; the sharded solver detects a wedged run (summed group pushes >=
// the global budget) after the join and redoes it as one serial loop, so
// wedged results match the unsharded solver exactly (see DESIGN.md §9.7).
//
// `control` may be null (cold loop, no shared budget); see FptasLoopControl.
FptasLoopStats RunFptasPushLoop(const FlatMcf& flat, const FptasWorkspace& ws,
                                double epsilon, double delta, int64_t max_pushes,
                                const std::vector<int32_t>& commodities,
                                std::vector<double>& length,
                                std::vector<double>& raw_flow,
                                const FptasLoopControl* control = nullptr);

}  // namespace mcf_internal
}  // namespace bds

#endif  // BDS_SRC_LP_MCF_INTERNAL_H_
