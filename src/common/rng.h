// Deterministic pseudo-random number generation for simulations.
//
// Every stochastic component takes an explicit Rng (or a seed) so that
// experiments are reproducible run-to-run; nothing in the library touches
// global random state. The core generator is splitmix64-seeded xoshiro256**.

#ifndef BDS_SRC_COMMON_RNG_H_
#define BDS_SRC_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace bds {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  // Uniform over the full 64-bit range.
  uint64_t NextUint64();

  // Uniform in [0, 1).
  double NextDouble();

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform real in [lo, hi).
  double Uniform(double lo, double hi);

  // true with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  // Standard normal via Box-Muller, then scaled.
  double Normal(double mean, double stddev);

  // Exponential with the given mean (mean = 1/lambda). Requires mean > 0.
  double Exponential(double mean);

  // Log-normal: exp(Normal(mu_log, sigma_log)).
  double LogNormal(double mu_log, double sigma_log);

  // Pareto with scale x_m > 0 and shape alpha > 0.
  double Pareto(double x_m, double alpha);

  // Zipf-distributed rank in [1, n] with exponent s >= 0 (s=0 is uniform).
  // Uses inverse-CDF over precomputable weights; O(n) per draw is avoided by
  // rejection-inversion for large n.
  int64_t Zipf(int64_t n, double s);

  // Sample k distinct indices from [0, n) uniformly (Floyd's algorithm).
  std::vector<int64_t> SampleWithoutReplacement(int64_t n, int64_t k);

  // In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (int64_t i = static_cast<int64_t>(v.size()) - 1; i > 0; --i) {
      int64_t j = UniformInt(0, i);
      using std::swap;
      swap(v[i], v[j]);
    }
  }

  // Derive an independent child generator (stable across platforms).
  Rng Fork();

 private:
  uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace bds

#endif  // BDS_SRC_COMMON_RNG_H_
