// Minimal leveled logger.
//
// Usage:
//   BDS_LOG(INFO) << "controller cycle " << k << " finished";
//   BDS_LOG_EVERY_N(WARNING, 100) << "allocator retried";  // 1st, 101st, ...
//
// The global threshold defaults to kWarning so that library users (tests,
// benches) are not flooded; examples raise it explicitly, and the BDS_LOG_LEVEL
// environment variable ("debug", "info", "warning", "error", "none", or 0-4)
// overrides the default at process start.

#ifndef BDS_SRC_COMMON_LOGGING_H_
#define BDS_SRC_COMMON_LOGGING_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <sstream>
#include <string>

namespace bds {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kNone = 4,
};

// Process-wide minimum level that is actually emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Applies the BDS_LOG_LEVEL environment variable (if set) to the global
// threshold. Runs automatically at process start; public so tests can
// re-apply it after changing the level. Returns true when the variable was
// present and parsed.
bool InitLogLevelFromEnv();

// Prefix every message with a wall-clock timestamp (off by default: the
// deterministic tests diff stderr output).
void SetLogTimestamps(bool enabled);

// Redirects emitted messages to `sink` instead of stderr; pass nullptr to
// restore stderr. The sink receives the fully formatted line (no trailing
// newline). LogMessageCount() still counts every emitted message, so tests
// can either capture text via a sink or just count.
using LogSink = std::function<void(LogLevel level, const std::string& line)>;
void SetLogSink(LogSink sink);

// Number of messages emitted since process start (testing hook).
int64_t LogMessageCount();

namespace log_internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

// Swallows the stream when the message is below the threshold.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

// True on the 1st, (n+1)th, (2n+1)th, ... call for this site's counter
// (n <= 1 always logs). Relaxed: exact interleaving under races is not worth
// a barrier for a log-rate limiter.
inline bool ShouldLogEveryN(std::atomic<int64_t>* counter, int64_t n) {
  int64_t seen = counter->fetch_add(1, std::memory_order_relaxed);
  return n <= 1 || seen % n == 0;
}

}  // namespace log_internal

namespace log_internal {
// Severity aliases so BDS_LOG(INFO) can token-paste.
inline constexpr LogLevel kLevel_DEBUG = LogLevel::kDebug;
inline constexpr LogLevel kLevel_INFO = LogLevel::kInfo;
inline constexpr LogLevel kLevel_WARNING = LogLevel::kWarning;
inline constexpr LogLevel kLevel_ERROR = LogLevel::kError;

// Lets the macro below produce a void expression in both branches.
struct Voidify {
  void operator&(std::ostream&) {}
};
}  // namespace log_internal

#define BDS_LOG(severity)                                                                   \
  ((::bds::log_internal::kLevel_##severity) < ::bds::GetLogLevel())                        \
      ? (void)0                                                                             \
      : ::bds::log_internal::Voidify() &                                                    \
            ::bds::log_internal::LogMessage(::bds::log_internal::kLevel_##severity,         \
                                            __FILE__, __LINE__)                             \
                .stream()

// Rate-limited logging: emits on the 1st, (n+1)th, (2n+1)th, ... execution
// of this statement. Occurrences are counted per call site whether or not
// the severity passes the threshold. Declares a static, so use it as a
// statement (inside braces when under an `if`/`else`).
#define BDS_LOG_EVERY_N_IMPL(severity, n, counter)                                          \
  static ::std::atomic<int64_t> counter{0};                                                 \
  if (!::bds::log_internal::ShouldLogEveryN(&counter, (n))) {                               \
  } else                                                                                    \
    BDS_LOG(severity)

#define BDS_LOG_CONCAT_(a, b) a##b
#define BDS_LOG_CONCAT(a, b) BDS_LOG_CONCAT_(a, b)
#define BDS_LOG_EVERY_N(severity, n) \
  BDS_LOG_EVERY_N_IMPL(severity, n, BDS_LOG_CONCAT(bds_log_every_n_counter_, __COUNTER__))

}  // namespace bds

#endif  // BDS_SRC_COMMON_LOGGING_H_
