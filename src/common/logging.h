// Minimal leveled logger.
//
// Usage:
//   BDS_LOG(INFO) << "controller cycle " << k << " finished";
//
// The global threshold defaults to kWarning so that library users (tests,
// benches) are not flooded; examples raise it explicitly.

#ifndef BDS_SRC_COMMON_LOGGING_H_
#define BDS_SRC_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace bds {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kNone = 4,
};

// Process-wide minimum level that is actually emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Number of messages emitted since process start (testing hook).
int64_t LogMessageCount();

namespace log_internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Swallows the stream when the message is below the threshold.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace log_internal

namespace log_internal {
// Severity aliases so BDS_LOG(INFO) can token-paste.
inline constexpr LogLevel kLevel_DEBUG = LogLevel::kDebug;
inline constexpr LogLevel kLevel_INFO = LogLevel::kInfo;
inline constexpr LogLevel kLevel_WARNING = LogLevel::kWarning;
inline constexpr LogLevel kLevel_ERROR = LogLevel::kError;

// Lets the macro below produce a void expression in both branches.
struct Voidify {
  void operator&(std::ostream&) {}
};
}  // namespace log_internal

#define BDS_LOG(severity)                                                                   \
  ((::bds::log_internal::kLevel_##severity) < ::bds::GetLogLevel())                        \
      ? (void)0                                                                             \
      : ::bds::log_internal::Voidify() &                                                    \
            ::bds::log_internal::LogMessage(::bds::log_internal::kLevel_##severity,         \
                                            __FILE__, __LINE__)                             \
                .stream()

}  // namespace bds

#endif  // BDS_SRC_COMMON_LOGGING_H_
