// ASCII table rendering for benchmark output. Every bench prints the rows the
// corresponding paper table/figure reports, via this printer, so output is
// uniform and machine-greppable.

#ifndef BDS_SRC_COMMON_TABLE_H_
#define BDS_SRC_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace bds {

class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  // Convenience: formats doubles with the given precision.
  static std::string Num(double v, int precision = 2);

  std::string ToString() const;
  void Print() const;  // To stdout.

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace bds

#endif  // BDS_SRC_COMMON_TABLE_H_
