// A small deterministic fork-join worker pool.
//
// ParallelRunner::For partitions an index range into one contiguous slice
// per thread and runs them concurrently. The partition depends only on (n,
// num_threads), and callers write results into pre-sized per-index slots, so
// a parallel run produces byte-identical output to a serial one — the
// determinism contract the controller's thread knob relies on (tests assert
// equal CycleDecision fingerprints for num_threads == 1 and > 1).
//
// With num_threads == 1 no threads are ever created and For() degenerates to
// a plain function call, keeping the default configuration free of any
// synchronization cost.

#ifndef BDS_SRC_COMMON_PARALLEL_H_
#define BDS_SRC_COMMON_PARALLEL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bds {

class ParallelRunner {
 public:
  // Clamped to [1, hardware_concurrency] — oversubscribing a machine only
  // adds contention, and the slice partition never affects results (callers
  // write to position-addressed slots). Workers (num_threads - 1 of them;
  // the calling thread runs the first slice) are spawned lazily on the first
  // parallel For().
  explicit ParallelRunner(int num_threads);
  ~ParallelRunner();

  ParallelRunner(const ParallelRunner&) = delete;
  ParallelRunner& operator=(const ParallelRunner&) = delete;

  // Runs fn(begin, end) over disjoint slices covering [0, n). fn must only
  // write to state owned by its slice. Blocks until every slice finished.
  void For(size_t n, const std::function<void(size_t begin, size_t end)>& fn);

  int num_threads() const { return num_threads_; }

 private:
  void WorkerLoop(int worker);
  void EnsureWorkers();

  const int num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(size_t, size_t)>* task_ = nullptr;  // Guarded by mu_.
  size_t task_n_ = 0;
  uint64_t generation_ = 0;  // Bumped per For(); workers run once per bump.
  int outstanding_ = 0;
  bool stop_ = false;
};

}  // namespace bds

#endif  // BDS_SRC_COMMON_PARALLEL_H_
