// A small deterministic fork-join worker pool.
//
// ParallelRunner::For partitions an index range into one contiguous slice
// per thread and runs them concurrently. The partition depends only on (n,
// num_threads), and callers write results into pre-sized per-index slots, so
// a parallel run produces byte-identical output to a serial one — the
// determinism contract the controller's thread knob relies on (tests assert
// equal CycleDecision fingerprints for num_threads == 1 and > 1).
//
// ForWeighted partitions by a per-item weight vector instead of by count, so
// heterogeneous work units (controller shard groups, per-job candidate
// ranges) land on threads in near-equal total weight. The partition is a
// pure function of (weights, num_threads); outputs stay position-addressed,
// so the determinism contract is unchanged.
//
// With num_threads == 1 no threads are ever created and For() degenerates to
// a plain function call, keeping the default configuration free of any
// synchronization cost. Oversized pools are clamped per call to the number
// of work items: For(n) with n < num_threads wakes (and lazily spawns) only
// n workers, so per-shard passes over a handful of items never pay for a
// fleet of idle threads.

#ifndef BDS_SRC_COMMON_PARALLEL_H_
#define BDS_SRC_COMMON_PARALLEL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace bds {

class ParallelRunner {
 public:
  // Clamped to [1, hardware_concurrency] — oversubscribing a machine only
  // adds contention, and the slice partition never affects results (callers
  // write to position-addressed slots). Workers (at most num_threads - 1;
  // the calling thread runs the first slice) are spawned lazily, and only as
  // many as a call's work-item count can keep busy.
  explicit ParallelRunner(int num_threads);
  ~ParallelRunner();

  ParallelRunner(const ParallelRunner&) = delete;
  ParallelRunner& operator=(const ParallelRunner&) = delete;

  // Runs fn(begin, end) over disjoint slices covering [0, n). fn must only
  // write to state owned by its slice. Blocks until every slice finished.
  // At most min(num_threads, n) slices run; extra pool capacity stays idle
  // (and unspawned) rather than receiving empty slices.
  void For(size_t n, const std::function<void(size_t begin, size_t end)>& fn);

  // Like For, but slices [0, weights.size()) so every slice carries a
  // near-equal share of the total weight. Items keep their order (slices are
  // contiguous); a deterministic function of (weights, num_threads).
  void ForWeighted(const std::vector<int64_t>& weights,
                   const std::function<void(size_t begin, size_t end)>& fn);

  int num_threads() const { return num_threads_; }

  // Worker threads created so far (test/debug hook; grows lazily up to
  // num_threads - 1).
  int spawned_workers() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop(int worker);
  void EnsureWorkers(int needed);
  // Dispatches fn over the precomputed contiguous `slices` (slice 0 runs on
  // the calling thread, the rest on workers 1..slices.size()-1).
  void RunSlices(std::vector<std::pair<size_t, size_t>> slices,
                 const std::function<void(size_t, size_t)>& fn);

  const int num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(size_t, size_t)>* task_ = nullptr;  // Guarded by mu_.
  std::vector<std::pair<size_t, size_t>> task_slices_;         // Guarded by mu_.
  uint64_t generation_ = 0;  // Bumped per For(); workers run once per bump.
  int outstanding_ = 0;
  bool stop_ = false;
};

}  // namespace bds

#endif  // BDS_SRC_COMMON_PARALLEL_H_
