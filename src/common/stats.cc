#include "src/common/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/common/status.h"

namespace bds {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  double delta = other.mean_ - mean_;
  int64_t total = count_ + other.count_;
  double nf = static_cast<double>(count_);
  double mf = static_cast<double>(other.count_);
  m2_ += other.m2_ + delta * delta * nf * mf / static_cast<double>(total);
  mean_ += delta * mf / static_cast<double>(total);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ = total;
}

double RunningStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void EmpiricalDistribution::Add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void EmpiricalDistribution::AddAll(const std::vector<double>& xs) {
  samples_.insert(samples_.end(), xs.begin(), xs.end());
  sorted_ = false;
}

void EmpiricalDistribution::Merge(const EmpiricalDistribution& other) {
  if (other.samples_.empty()) {
    return;
  }
  if (&other == this) {
    // Self-merge: duplicate every sample. Copy first — inserting a vector's
    // own range into itself invalidates the source iterators on growth.
    std::vector<double> copy = samples_;
    samples_.insert(samples_.end(), copy.begin(), copy.end());
    sorted_ = false;
    return;
  }
  if (samples_.empty()) {
    samples_ = other.samples_;
    sorted_ = other.sorted_;
    return;
  }
  samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
  sorted_ = false;
}

void EmpiricalDistribution::EnsureSorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double EmpiricalDistribution::Quantile(double q) const {
  BDS_CHECK(!samples_.empty());
  BDS_CHECK(q >= 0.0 && q <= 1.0);
  EnsureSorted();
  if (samples_.size() == 1) {
    return samples_[0];
  }
  double pos = q * static_cast<double>(samples_.size() - 1);
  size_t i = static_cast<size_t>(pos);
  if (i + 1 >= samples_.size()) {
    return samples_.back();
  }
  double frac = pos - static_cast<double>(i);
  return samples_[i] * (1.0 - frac) + samples_[i + 1] * frac;
}

double EmpiricalDistribution::Mean() const {
  if (samples_.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double s : samples_) {
    sum += s;
  }
  return sum / static_cast<double>(samples_.size());
}

double EmpiricalDistribution::Stddev() const {
  if (samples_.size() < 2) {
    return 0.0;
  }
  double mean = Mean();
  double m2 = 0.0;
  for (double s : samples_) {
    m2 += (s - mean) * (s - mean);
  }
  return std::sqrt(m2 / static_cast<double>(samples_.size()));
}

double EmpiricalDistribution::Min() const {
  BDS_CHECK(!samples_.empty());
  EnsureSorted();
  return samples_.front();
}

double EmpiricalDistribution::Max() const {
  BDS_CHECK(!samples_.empty());
  EnsureSorted();
  return samples_.back();
}

double EmpiricalDistribution::CdfAt(double x) const {
  if (samples_.empty()) {
    return 0.0;
  }
  EnsureSorted();
  auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) / static_cast<double>(samples_.size());
}

std::vector<EmpiricalDistribution::CdfPoint> EmpiricalDistribution::CdfSeries(int points) const {
  std::vector<CdfPoint> out;
  if (samples_.empty() || points <= 0) {
    return out;
  }
  out.reserve(static_cast<size_t>(points));
  for (int i = 1; i <= points; ++i) {
    double q = static_cast<double>(i) / static_cast<double>(points);
    out.push_back({Quantile(q), q});
  }
  return out;
}

Histogram::Histogram(double lo, double hi, int bins) : lo_(lo), hi_(hi) {
  BDS_CHECK(hi > lo && bins > 0);
  counts_.assign(static_cast<size_t>(bins), 0);
}

void Histogram::Add(double x) {
  int bin = static_cast<int>((x - lo_) / (hi_ - lo_) * static_cast<double>(counts_.size()));
  bin = std::clamp(bin, 0, static_cast<int>(counts_.size()) - 1);
  ++counts_[static_cast<size_t>(bin)];
  ++total_;
}

void Histogram::AddCount(int bin, int64_t n) {
  BDS_CHECK(bin >= 0 && bin < bins());
  counts_[static_cast<size_t>(bin)] += n;
  total_ += n;
}

void Histogram::Merge(const Histogram& other) {
  BDS_CHECK(other.lo_ == lo_ && other.hi_ == hi_ && other.bins() == bins());
  if (other.total_ == 0) {
    return;
  }
  // Self-merge doubles every bin; reading counts_ while writing it is safe
  // here because the sizes match and we only do element-wise +=.
  for (size_t b = 0; b < counts_.size(); ++b) {
    counts_[b] += other.counts_[b];
  }
  total_ += other.total_;
}

int64_t Histogram::BinCount(int bin) const {
  BDS_CHECK(bin >= 0 && bin < bins());
  return counts_[static_cast<size_t>(bin)];
}

double Histogram::BinLow(int bin) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) / static_cast<double>(bins());
}

double Histogram::BinHigh(int bin) const { return BinLow(bin + 1); }

double Histogram::Quantile(double q) const {
  if (total_ == 0) {
    return lo_;  // Range floor: always a representable value of this histogram.
  }
  // std::clamp is unspecified for NaN; pin it to the low edge explicitly.
  if (!(q >= 0.0)) {
    q = 0.0;
  } else if (q > 1.0) {
    q = 1.0;
  }
  const double target = q * static_cast<double>(total_);
  int64_t cumulative = 0;
  int last_occupied = -1;
  for (int b = 0; b < bins(); ++b) {
    const int64_t c = counts_[static_cast<size_t>(b)];
    if (static_cast<double>(cumulative + c) >= target && c > 0) {
      const double within = (target - static_cast<double>(cumulative)) / static_cast<double>(c);
      return BinLow(b) + (BinHigh(b) - BinLow(b)) * std::clamp(within, 0.0, 1.0);
    }
    cumulative += c;
    if (c > 0) {
      last_occupied = b;
    }
  }
  // Rounding pushed the target past every occupied bin; the tightest honest
  // answer is the high edge of the last occupied bin, not hi_ (which can be
  // far above every recorded sample when the top bins are empty).
  return last_occupied >= 0 ? BinHigh(last_occupied) : hi_;
}

std::string Histogram::ToString(int width) const {
  std::ostringstream os;
  int64_t peak = 1;
  for (int64_t c : counts_) {
    peak = std::max(peak, c);
  }
  for (int b = 0; b < bins(); ++b) {
    int bar = static_cast<int>(static_cast<double>(counts_[static_cast<size_t>(b)]) /
                               static_cast<double>(peak) * width);
    os << "[" << BinLow(b) << ", " << BinHigh(b) << ") ";
    for (int i = 0; i < bar; ++i) {
      os << '#';
    }
    os << " " << counts_[static_cast<size_t>(b)] << "\n";
  }
  return os.str();
}

void TimeSeries::Add(double t, double value) { points_.push_back({t, value}); }

double TimeSeries::MaxValue() const {
  double m = 0.0;
  for (const Point& p : points_) {
    m = std::max(m, p.value);
  }
  return m;
}

double TimeSeries::MeanValue() const {
  if (points_.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (const Point& p : points_) {
    sum += p.value;
  }
  return sum / static_cast<double>(points_.size());
}

std::vector<TimeSeries::Point> TimeSeries::Resample(double t0, double t1, double step) const {
  BDS_CHECK(step > 0.0 && t1 >= t0);
  std::vector<Point> out;
  size_t idx = 0;
  double last = points_.empty() ? 0.0 : points_.front().value;
  for (double t = t0; t <= t1 + 1e-12; t += step) {
    while (idx < points_.size() && points_[idx].t <= t) {
      last = points_[idx].value;
      ++idx;
    }
    out.push_back({t, last});
  }
  return out;
}

}  // namespace bds
