#include "src/common/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "src/common/status.h"

namespace bds {

AsciiTable::AsciiTable(std::vector<std::string> header) : header_(std::move(header)) {
  BDS_CHECK(!header_.empty());
}

void AsciiTable::AddRow(std::vector<std::string> row) {
  BDS_CHECK(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

std::string AsciiTable::Num(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

std::string AsciiTable::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row, std::ostringstream& os) {
    os << "|";
    for (size_t c = 0; c < row.size(); ++c) {
      os << " " << row[c];
      for (size_t pad = row[c].size(); pad < widths[c]; ++pad) {
        os << ' ';
      }
      os << " |";
    }
    os << "\n";
  };

  std::ostringstream os;
  std::ostringstream sep;
  sep << "+";
  for (size_t w : widths) {
    for (size_t i = 0; i < w + 2; ++i) {
      sep << '-';
    }
    sep << '+';
  }
  sep << "\n";

  os << sep.str();
  render_row(header_, os);
  os << sep.str();
  for (const auto& row : rows_) {
    render_row(row, os);
  }
  os << sep.str();
  return os.str();
}

void AsciiTable::Print() const { std::fputs(ToString().c_str(), stdout); }

}  // namespace bds
