// Lightweight error propagation: Status and StatusOr<T>.
//
// BDS is a library first; it must not abort on bad user input. Internal
// invariant violations still use BDS_CHECK (crashing early beats silently
// corrupting a simulation).

#ifndef BDS_SRC_COMMON_STATUS_H_
#define BDS_SRC_COMMON_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <variant>

namespace bds {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kFailedPrecondition,
  kOutOfRange,
  kUnavailable,
  kInternal,
  kInfeasible,  // LP/scheduling problem has no feasible solution.
};

const char* StatusCodeName(StatusCode code);

class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) {
      return "OK";
    }
    return std::string(StatusCodeName(code_)) + ": " + message_;
  }

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status InvalidArgumentError(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
inline Status NotFoundError(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
inline Status FailedPreconditionError(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
inline Status OutOfRangeError(std::string msg) {
  return Status(StatusCode::kOutOfRange, std::move(msg));
}
inline Status UnavailableError(std::string msg) {
  return Status(StatusCode::kUnavailable, std::move(msg));
}
inline Status InternalError(std::string msg) { return Status(StatusCode::kInternal, std::move(msg)); }
inline Status InfeasibleError(std::string msg) {
  return Status(StatusCode::kInfeasible, std::move(msg));
}

// A value or an error. Minimal analogue of absl::StatusOr.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : data_(std::move(status)) {}  // NOLINT(google-explicit-constructor)
  StatusOr(T value) : data_(std::move(value)) {}         // NOLINT(google-explicit-constructor)

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOkStatus;
    if (ok()) {
      return kOkStatus;
    }
    return std::get<Status>(data_);
  }

  const T& value() const& {
    CheckOk();
    return std::get<T>(data_);
  }
  T& value() & {
    CheckOk();
    return std::get<T>(data_);
  }
  T&& value() && {
    CheckOk();
    return std::get<T>(std::move(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckOk() const {
    if (!ok()) {
      std::fprintf(stderr, "StatusOr::value() on error: %s\n",
                   std::get<Status>(data_).ToString().c_str());
      std::abort();
    }
  }

  std::variant<Status, T> data_;
};

// Internal invariant checks. Fatal: a failed check means the library itself
// is wrong, not the caller.
#define BDS_CHECK(cond)                                                                   \
  do {                                                                                    \
    if (!(cond)) {                                                                        \
      std::fprintf(stderr, "BDS_CHECK failed at %s:%d: %s\n", __FILE__, __LINE__, #cond); \
      std::abort();                                                                       \
    }                                                                                     \
  } while (0)

#define BDS_CHECK_MSG(cond, msg)                                                     \
  do {                                                                               \
    if (!(cond)) {                                                                   \
      std::fprintf(stderr, "BDS_CHECK failed at %s:%d: %s (%s)\n", __FILE__, __LINE__, \
                   #cond, msg);                                                      \
      std::abort();                                                                  \
    }                                                                                \
  } while (0)

#define BDS_RETURN_IF_ERROR(expr)       \
  do {                                  \
    ::bds::Status _bds_status = (expr); \
    if (!_bds_status.ok()) {            \
      return _bds_status;               \
    }                                   \
  } while (0)

}  // namespace bds

#endif  // BDS_SRC_COMMON_STATUS_H_
