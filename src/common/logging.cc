#include "src/common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>

namespace bds {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarning};
std::atomic<int64_t> g_count{0};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kNone:
      return "?";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }
int64_t LogMessageCount() { return g_count.load(std::memory_order_relaxed); }

namespace log_internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  stream_ << "[" << LevelTag(level) << " " << Basename(file) << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  g_count.fetch_add(1, std::memory_order_relaxed);
  std::string text = stream_.str();
  std::fprintf(stderr, "%s\n", text.c_str());
  (void)level_;
}

}  // namespace log_internal

}  // namespace bds
