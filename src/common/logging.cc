#include "src/common/logging.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <mutex>

namespace bds {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarning};
std::atomic<int64_t> g_count{0};
std::atomic<bool> g_timestamps{false};

// Sink is cold-path state: only touched when a message actually clears the
// level threshold, so a mutex is fine.
std::mutex& SinkMutex() {
  static std::mutex* m = new std::mutex();
  return *m;
}
LogSink& SinkSlot() {
  static LogSink* sink = new LogSink();
  return *sink;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kNone:
      return "?";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

bool ParseLogLevel(const char* text, LogLevel* out) {
  if (text == nullptr || *text == '\0') return false;
  std::string lower;
  for (const char* p = text; *p != '\0'; ++p) {
    lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(*p))));
  }
  if (lower == "debug" || lower == "0") {
    *out = LogLevel::kDebug;
  } else if (lower == "info" || lower == "1") {
    *out = LogLevel::kInfo;
  } else if (lower == "warning" || lower == "warn" || lower == "2") {
    *out = LogLevel::kWarning;
  } else if (lower == "error" || lower == "3") {
    *out = LogLevel::kError;
  } else if (lower == "none" || lower == "off" || lower == "4") {
    *out = LogLevel::kNone;
  } else {
    return false;
  }
  return true;
}

// Runs InitLogLevelFromEnv once before main() so BDS_LOG_LEVEL=debug works
// without any code change in the binary being debugged.
[[maybe_unused]] const bool g_env_init_done = InitLogLevelFromEnv();
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }
int64_t LogMessageCount() { return g_count.load(std::memory_order_relaxed); }

bool InitLogLevelFromEnv() {
  const char* value = std::getenv("BDS_LOG_LEVEL");
  LogLevel level;
  if (!ParseLogLevel(value, &level)) return false;
  SetLogLevel(level);
  return true;
}

void SetLogTimestamps(bool enabled) { g_timestamps.store(enabled, std::memory_order_relaxed); }

void SetLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(SinkMutex());
  SinkSlot() = std::move(sink);
}

namespace log_internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  g_count.fetch_add(1, std::memory_order_relaxed);
  std::ostringstream line;
  if (g_timestamps.load(std::memory_order_relaxed)) {
    std::time_t now = std::time(nullptr);
    std::tm tm_buf{};
#if defined(_WIN32)
    localtime_s(&tm_buf, &now);
#else
    localtime_r(&now, &tm_buf);
#endif
    char stamp[32];
    if (std::strftime(stamp, sizeof(stamp), "%Y-%m-%d %H:%M:%S", &tm_buf) > 0) {
      line << stamp << " ";
    }
  }
  line << "[" << LevelTag(level_) << " " << Basename(file_) << ":" << line_ << "] "
       << stream_.str();
  std::string text = line.str();
  {
    std::lock_guard<std::mutex> lock(SinkMutex());
    LogSink& sink = SinkSlot();
    if (sink) {
      sink(level_, text);
      return;
    }
  }
  std::fprintf(stderr, "%s\n", text.c_str());
}

}  // namespace log_internal

}  // namespace bds
