#include "src/common/rng.h"

#include <cmath>

#include "src/common/status.h"

namespace bds {

namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(sm);
  }
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) {
    s_[0] = 1;
  }
}

uint64_t Rng::NextUint64() {
  // xoshiro256**
  uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  BDS_CHECK(lo <= hi);
  uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) {  // Full 64-bit range.
    return static_cast<int64_t>(NextUint64());
  }
  // Rejection sampling to avoid modulo bias.
  uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t x;
  do {
    x = NextUint64();
  } while (x >= limit);
  return lo + static_cast<int64_t>(x % range);
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return NextDouble() < p;
}

double Rng::Normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  // Box-Muller; u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - NextDouble();
  double u2 = NextDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::Exponential(double mean) {
  BDS_CHECK(mean > 0.0);
  double u = 1.0 - NextDouble();  // (0, 1]
  return -mean * std::log(u);
}

double Rng::LogNormal(double mu_log, double sigma_log) {
  return std::exp(Normal(mu_log, sigma_log));
}

double Rng::Pareto(double x_m, double alpha) {
  BDS_CHECK(x_m > 0.0 && alpha > 0.0);
  double u = 1.0 - NextDouble();  // (0, 1]
  return x_m / std::pow(u, 1.0 / alpha);
}

int64_t Rng::Zipf(int64_t n, double s) {
  BDS_CHECK(n >= 1);
  if (n == 1) {
    return 1;
  }
  if (s <= 0.0) {
    return UniformInt(1, n);
  }
  // Rejection-inversion (Hörmann). Works for any s > 0, O(1) expected time.
  double sx = s;
  auto h = [sx](double x) {
    // Integral of x^-s.
    if (sx == 1.0) {
      return std::log(x);
    }
    return (std::pow(x, 1.0 - sx) - 1.0) / (1.0 - sx);
  };
  auto h_inv = [sx](double y) {
    if (sx == 1.0) {
      return std::exp(y);
    }
    return std::pow(1.0 + y * (1.0 - sx), 1.0 / (1.0 - sx));
  };
  double h_x0 = h(0.5) - 1.0;  // h(1/2) - f(1)
  double h_n = h(static_cast<double>(n) + 0.5);
  for (int attempt = 0; attempt < 1000; ++attempt) {
    double u = h_x0 + NextDouble() * (h_n - h_x0);
    double x = h_inv(u);
    int64_t k = static_cast<int64_t>(x + 0.5);
    if (k < 1) {
      k = 1;
    }
    if (k > n) {
      k = n;
    }
    double kd = static_cast<double>(k);
    if (u >= h(kd + 0.5) - std::pow(kd, -sx)) {
      return k;
    }
  }
  // Statistically unreachable; fall back to the mode.
  return 1;
}

std::vector<int64_t> Rng::SampleWithoutReplacement(int64_t n, int64_t k) {
  BDS_CHECK(k >= 0 && k <= n);
  // Floyd's algorithm: O(k) expected draws, no O(n) scratch.
  std::vector<int64_t> out;
  out.reserve(static_cast<size_t>(k));
  for (int64_t j = n - k; j < n; ++j) {
    int64_t t = UniformInt(0, j);
    bool seen = false;
    for (int64_t v : out) {
      if (v == t) {
        seen = true;
        break;
      }
    }
    out.push_back(seen ? j : t);
  }
  return out;
}

Rng Rng::Fork() { return Rng(NextUint64()); }

}  // namespace bds
