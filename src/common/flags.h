// Tiny command-line flag parser for examples and benches.
//
//   FlagParser flags;
//   int dcs = 10; double size_gb = 70.0; bool verbose = false;
//   flags.AddInt("dcs", &dcs, "number of destination DCs");
//   flags.AddDouble("size-gb", &size_gb, "data size in GB");
//   flags.AddBool("verbose", &verbose, "enable info logging");
//   if (!flags.Parse(argc, argv)) return 1;  // prints usage on --help / error
//
// Accepted syntax: --name=value, --name value, --bool-flag, --no-bool-flag.

#ifndef BDS_SRC_COMMON_FLAGS_H_
#define BDS_SRC_COMMON_FLAGS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace bds {

class FlagParser {
 public:
  void AddInt(const std::string& name, int64_t* target, const std::string& help);
  void AddInt(const std::string& name, int* target, const std::string& help);
  void AddDouble(const std::string& name, double* target, const std::string& help);
  void AddBool(const std::string& name, bool* target, const std::string& help);
  void AddString(const std::string& name, std::string* target, const std::string& help);

  // Returns false (after printing usage) on --help or malformed input.
  bool Parse(int argc, char** argv);

  std::string Usage(const std::string& program) const;

 private:
  enum class Kind { kInt64, kInt, kDouble, kBool, kString };
  struct Flag {
    std::string name;
    Kind kind;
    void* target;
    std::string help;
  };

  const Flag* Find(const std::string& name) const;
  bool Assign(const Flag& flag, const std::string& value) const;

  std::vector<Flag> flags_;
};

}  // namespace bds

#endif  // BDS_SRC_COMMON_FLAGS_H_
