// Online statistics, empirical CDFs and histograms used by the evaluation
// harness to report exactly the quantities the paper's figures plot.

#ifndef BDS_SRC_COMMON_STATS_H_
#define BDS_SRC_COMMON_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace bds {

// Welford-style running mean/variance plus min/max.
class RunningStats {
 public:
  void Add(double x);
  void Merge(const RunningStats& other);

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double variance() const;  // Population variance.
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Collects samples and answers quantile / CDF queries. Samples are stored;
// intended for up to a few million points (the scale of our experiments).
class EmpiricalDistribution {
 public:
  void Add(double x);
  void AddAll(const std::vector<double>& xs);
  // Pools another distribution's samples into this one (sample union, same
  // result as adding every sample individually). Mirrors RunningStats::Merge:
  // merging an empty distribution is a no-op, self-merge doubles the sample.
  void Merge(const EmpiricalDistribution& other);

  int64_t count() const { return static_cast<int64_t>(samples_.size()); }
  bool empty() const { return samples_.empty(); }

  // Quantile q in [0, 1] via linear interpolation on the sorted sample.
  double Quantile(double q) const;
  double Median() const { return Quantile(0.5); }
  double Mean() const;
  double Stddev() const;
  double Min() const;
  double Max() const;

  // Empirical CDF value: fraction of samples <= x.
  double CdfAt(double x) const;

  // (x, F(x)) pairs at `points` evenly spaced sample quantiles, ready to print
  // as a figure series.
  struct CdfPoint {
    double x;
    double cdf;
  };
  std::vector<CdfPoint> CdfSeries(int points = 20) const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  void EnsureSorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

// Fixed-bin histogram over [lo, hi); out-of-range samples clamp to edge bins.
class Histogram {
 public:
  Histogram(double lo, double hi, int bins);

  void Add(double x);
  // Bulk insert into a bin by index (n may be negative when building a diff;
  // counts never go below zero by construction of the callers). Used by the
  // telemetry registry to rebuild histograms from per-thread shard counts.
  void AddCount(int bin, int64_t n);
  // Adds another histogram's counts bin-by-bin. Both histograms must have
  // identical [lo, hi) range and bin count. Mirrors RunningStats::Merge:
  // merging an empty histogram is a no-op, self-merge doubles every bin.
  void Merge(const Histogram& other);

  int64_t BinCount(int bin) const;
  double BinLow(int bin) const;
  double BinHigh(int bin) const;

  // Approximate q-quantile (q in [0, 1]) assuming mass is uniform within a
  // bin: finds the bin holding the q-th count and interpolates inside it.
  // Values clamped into the edge bins resolve to the bin boundary. Edge
  // cases: an empty histogram returns lo(); q outside [0, 1] — including
  // NaN — is clamped (NaN resolves to q=0); when floating-point rounding
  // pushes the target past every occupied bin, the high edge of the last
  // occupied bin is returned rather than hi().
  double Quantile(double q) const;
  int bins() const { return static_cast<int>(counts_.size()); }
  int64_t total() const { return total_; }
  double lo() const { return lo_; }
  double hi() const { return hi_; }

  std::string ToString(int width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<int64_t> counts_;
  int64_t total_ = 0;
};

// A named time series of (t, value) points, e.g. link utilization over time.
class TimeSeries {
 public:
  explicit TimeSeries(std::string name = "") : name_(std::move(name)) {}

  void Add(double t, double value);

  struct Point {
    double t;
    double value;
  };
  const std::vector<Point>& points() const { return points_; }
  const std::string& name() const { return name_; }
  bool empty() const { return points_.empty(); }

  double MaxValue() const;
  double MeanValue() const;

  // Piecewise-constant resampling onto a fixed step (for table output).
  std::vector<Point> Resample(double t0, double t1, double step) const;

 private:
  std::string name_;
  std::vector<Point> points_;
};

}  // namespace bds

#endif  // BDS_SRC_COMMON_STATS_H_
