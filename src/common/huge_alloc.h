// Hugepage-backed allocator for large flat arrays.
//
// The simulator's SoA columns are multi-megabyte arrays touched at scattered
// slots (a component's members are spread across the pool), so on 4K pages
// nearly every access is a distinct TLB entry. This box runs transparent
// hugepages in madvise mode: marking the mapping with MADV_HUGEPAGE gets the
// columns onto 2MB pages, shrinking a ~16MB working set from ~4000 TLB
// entries to ~8.
//
// Allocations below kHugeThreshold fall back to operator new — vectors grow
// through small sizes before the column is worth a hugepage, and mmap per
// tiny node would be absurd. The mmap path over-allocates by one hugepage
// and trims to a 2MB-aligned start, because THP only collapses aligned 2MB
// extents.

#ifndef BDS_SRC_COMMON_HUGE_ALLOC_H_
#define BDS_SRC_COMMON_HUGE_ALLOC_H_

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

#if defined(__linux__)
#include <sys/mman.h>
#endif

namespace bds {

namespace huge_internal {

inline constexpr size_t kHugePage = 2u << 20;
// Columns smaller than a hugepage still benefit: the mapping is rounded up to
// one full aligned 2MB page, trading at most ~1.75MB of slack per column for
// a single TLB entry. Below this, stay on operator new.
inline constexpr size_t kHugeThreshold = 256u << 10;

inline size_t RoundUpHuge(size_t bytes) {
  return (bytes + kHugePage - 1) & ~(kHugePage - 1);
}

// Maps a 2MB-aligned, MADV_HUGEPAGE-marked region of RoundUpHuge(bytes).
// Returns nullptr on failure (caller falls back to operator new).
inline void* MapHuge(size_t bytes) {
#if defined(__linux__)
  size_t len = RoundUpHuge(bytes);
  // Over-map so a 2MB-aligned sub-range always exists, then trim the ends.
  size_t raw_len = len + kHugePage;
  void* raw = ::mmap(nullptr, raw_len, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (raw == MAP_FAILED) {
    return nullptr;
  }
  uintptr_t base = reinterpret_cast<uintptr_t>(raw);
  uintptr_t aligned = (base + kHugePage - 1) & ~(uintptr_t{kHugePage} - 1);
  size_t head = aligned - base;
  if (head != 0) {
    ::munmap(raw, head);
  }
  size_t tail = raw_len - head - len;
  if (tail != 0) {
    ::munmap(reinterpret_cast<void*>(aligned + len), tail);
  }
  void* p = reinterpret_cast<void*>(aligned);
#ifdef MADV_HUGEPAGE
  ::madvise(p, len, MADV_HUGEPAGE);
#endif
  return p;
#else
  (void)bytes;
  return nullptr;
#endif
}

inline void UnmapHuge(void* p, size_t bytes) {
#if defined(__linux__)
  ::munmap(p, RoundUpHuge(bytes));
#else
  (void)p;
  (void)bytes;
#endif
}

}  // namespace huge_internal

template <class T>
class HugePageAllocator {
 public:
  using value_type = T;

  HugePageAllocator() = default;
  template <class U>
  HugePageAllocator(const HugePageAllocator<U>&) noexcept {}

  T* allocate(size_t n) {
    size_t bytes = n * sizeof(T);
    if (bytes >= huge_internal::kHugeThreshold) {
      if (void* p = huge_internal::MapHuge(bytes)) {
        return static_cast<T*>(p);
      }
    }
    return static_cast<T*>(::operator new(bytes));
  }

  void deallocate(T* p, size_t n) noexcept {
    size_t bytes = n * sizeof(T);
    if (bytes >= huge_internal::kHugeThreshold) {
      huge_internal::UnmapHuge(p, bytes);
      return;
    }
    ::operator delete(p);
  }

  template <class U>
  bool operator==(const HugePageAllocator<U>&) const noexcept {
    return true;
  }
  template <class U>
  bool operator!=(const HugePageAllocator<U>&) const noexcept {
    return false;
  }
};

// A std::vector whose buffer moves onto 2MB pages once it outgrows one.
template <class T>
using HugeVector = std::vector<T, HugePageAllocator<T>>;

}  // namespace bds

#endif  // BDS_SRC_COMMON_HUGE_ALLOC_H_
