#include "src/common/parallel.h"

#include <algorithm>
#include <numeric>

#include "src/common/status.h"

namespace bds {

namespace {

// Slice `worker` of [0, n) split evenly across `threads` workers.
std::pair<size_t, size_t> Slice(size_t n, int threads, int worker) {
  size_t t = static_cast<size_t>(threads);
  size_t w = static_cast<size_t>(worker);
  return {n * w / t, n * (w + 1) / t};
}

int ClampThreads(int num_threads) {
  // More workers than hardware threads only adds contention — they cannot
  // run concurrently, and slice outputs are position-addressed so the thread
  // count never affects results. hardware_concurrency() may report 0.
  int hw = static_cast<int>(std::thread::hardware_concurrency());
  if (hw < 1) {
    hw = 1;
  }
  return std::max(1, std::min(num_threads, hw));
}

}  // namespace

ParallelRunner::ParallelRunner(int num_threads) : num_threads_(ClampThreads(num_threads)) {}

ParallelRunner::~ParallelRunner() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) {
    t.join();
  }
}

void ParallelRunner::EnsureWorkers(int needed) {
  // Lazily grow the pool: a run whose work-item count is below num_threads
  // only ever creates the workers its slices occupy.
  while (static_cast<int>(workers_.size()) < needed) {
    int w = static_cast<int>(workers_.size()) + 1;  // Worker 0 is the caller.
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

void ParallelRunner::WorkerLoop(int worker) {
  uint64_t seen = 0;
  for (;;) {
    const std::function<void(size_t, size_t)>* task;
    size_t begin = 0;
    size_t end = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) {
        return;
      }
      seen = generation_;
      task = task_;
      // A run with fewer slices than spawned workers leaves the extras idle:
      // they consume the generation bump but own no slice and must not touch
      // outstanding_ (the dispatcher only counts participating workers).
      if (static_cast<size_t>(worker) >= task_slices_.size()) {
        continue;
      }
      begin = task_slices_[static_cast<size_t>(worker)].first;
      end = task_slices_[static_cast<size_t>(worker)].second;
    }
    if (begin < end) {
      (*task)(begin, end);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--outstanding_ == 0) {
        done_cv_.notify_one();
      }
    }
  }
}

void ParallelRunner::RunSlices(std::vector<std::pair<size_t, size_t>> slices,
                               const std::function<void(size_t, size_t)>& fn) {
  int participants = static_cast<int>(slices.size());
  if (participants <= 1) {
    if (participants == 1 && slices[0].first < slices[0].second) {
      fn(slices[0].first, slices[0].second);
    }
    return;
  }
  EnsureWorkers(participants - 1);
  std::pair<size_t, size_t> own = slices[0];
  {
    std::lock_guard<std::mutex> lock(mu_);
    BDS_CHECK_MSG(outstanding_ == 0, "ParallelRunner::For is not reentrant");
    task_ = &fn;
    task_slices_ = std::move(slices);
    outstanding_ = participants - 1;
    ++generation_;
  }
  work_cv_.notify_all();
  if (own.first < own.second) {
    fn(own.first, own.second);
  }
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return outstanding_ == 0; });
  task_ = nullptr;
}

void ParallelRunner::For(size_t n, const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) {
    return;
  }
  // Clamp to the work-item count: For(3) on a 16-thread pool runs 3 slices
  // (spawning at most 2 workers), not 16 slices of which 13 are empty.
  int threads = static_cast<int>(std::min<size_t>(static_cast<size_t>(num_threads_), n));
  if (threads == 1) {
    fn(0, n);
    return;
  }
  std::vector<std::pair<size_t, size_t>> slices(static_cast<size_t>(threads));
  for (int w = 0; w < threads; ++w) {
    slices[static_cast<size_t>(w)] = Slice(n, threads, w);
  }
  RunSlices(std::move(slices), fn);
}

void ParallelRunner::ForWeighted(const std::vector<int64_t>& weights,
                                 const std::function<void(size_t, size_t)>& fn) {
  size_t n = weights.size();
  if (n == 0) {
    return;
  }
  int threads = static_cast<int>(std::min<size_t>(static_cast<size_t>(num_threads_), n));
  if (threads == 1) {
    fn(0, n);
    return;
  }
  int64_t total = 0;
  for (int64_t w : weights) {
    BDS_CHECK_MSG(w >= 0, "ForWeighted: negative weight");
    total += w;
  }
  if (total == 0) {
    For(n, fn);
    return;
  }
  // Contiguous slices with near-equal weight: slice w ends at the first index
  // whose weight prefix reaches total * (w + 1) / threads. Pure function of
  // (weights, threads), so runs are reproducible.
  std::vector<std::pair<size_t, size_t>> slices;
  slices.reserve(static_cast<size_t>(threads));
  size_t begin = 0;
  int64_t prefix = 0;
  for (int w = 0; w < threads; ++w) {
    int64_t target = total * static_cast<int64_t>(w + 1) / threads;
    size_t end = begin;
    // Leave enough items for the remaining slices (each needs >= 1).
    size_t max_end = n - static_cast<size_t>(threads - 1 - w);
    while (end < max_end && (prefix < target || end < begin + 1)) {
      prefix += weights[end];
      ++end;
    }
    if (w == threads - 1) {
      end = n;
    }
    slices.emplace_back(begin, end);
    begin = end;
  }
  RunSlices(std::move(slices), fn);
}

}  // namespace bds
