#include "src/common/parallel.h"

#include <algorithm>

#include "src/common/status.h"

namespace bds {

namespace {

// Slice `worker` of [0, n) split evenly across `threads` workers.
std::pair<size_t, size_t> Slice(size_t n, int threads, int worker) {
  size_t t = static_cast<size_t>(threads);
  size_t w = static_cast<size_t>(worker);
  return {n * w / t, n * (w + 1) / t};
}

}  // namespace

namespace {
int ClampThreads(int num_threads) {
  // More workers than hardware threads only adds contention — they cannot
  // run concurrently, and slice outputs are position-addressed so the thread
  // count never affects results. hardware_concurrency() may report 0.
  int hw = static_cast<int>(std::thread::hardware_concurrency());
  if (hw < 1) {
    hw = 1;
  }
  return std::max(1, std::min(num_threads, hw));
}
}  // namespace

ParallelRunner::ParallelRunner(int num_threads) : num_threads_(ClampThreads(num_threads)) {}

ParallelRunner::~ParallelRunner() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) {
    t.join();
  }
}

void ParallelRunner::EnsureWorkers() {
  if (!workers_.empty()) {
    return;
  }
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int w = 1; w < num_threads_; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

void ParallelRunner::WorkerLoop(int worker) {
  uint64_t seen = 0;
  for (;;) {
    const std::function<void(size_t, size_t)>* task;
    size_t n;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) {
        return;
      }
      seen = generation_;
      task = task_;
      n = task_n_;
    }
    auto [begin, end] = Slice(n, num_threads_, worker);
    if (begin < end) {
      (*task)(begin, end);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--outstanding_ == 0) {
        done_cv_.notify_one();
      }
    }
  }
}

void ParallelRunner::For(size_t n, const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) {
    return;
  }
  if (num_threads_ == 1) {
    fn(0, n);
    return;
  }
  EnsureWorkers();
  {
    std::lock_guard<std::mutex> lock(mu_);
    BDS_CHECK_MSG(outstanding_ == 0, "ParallelRunner::For is not reentrant");
    task_ = &fn;
    task_n_ = n;
    outstanding_ = num_threads_ - 1;
    ++generation_;
  }
  work_cv_.notify_all();
  auto [begin, end] = Slice(n, num_threads_, 0);
  if (begin < end) {
    fn(begin, end);
  }
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return outstanding_ == 0; });
  task_ = nullptr;
}

}  // namespace bds
