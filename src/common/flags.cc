#include "src/common/flags.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace bds {

void FlagParser::AddInt(const std::string& name, int64_t* target, const std::string& help) {
  flags_.push_back({name, Kind::kInt64, target, help});
}
void FlagParser::AddInt(const std::string& name, int* target, const std::string& help) {
  flags_.push_back({name, Kind::kInt, target, help});
}
void FlagParser::AddDouble(const std::string& name, double* target, const std::string& help) {
  flags_.push_back({name, Kind::kDouble, target, help});
}
void FlagParser::AddBool(const std::string& name, bool* target, const std::string& help) {
  flags_.push_back({name, Kind::kBool, target, help});
}
void FlagParser::AddString(const std::string& name, std::string* target, const std::string& help) {
  flags_.push_back({name, Kind::kString, target, help});
}

const FlagParser::Flag* FlagParser::Find(const std::string& name) const {
  for (const Flag& f : flags_) {
    if (f.name == name) {
      return &f;
    }
  }
  return nullptr;
}

bool FlagParser::Assign(const Flag& flag, const std::string& value) const {
  char* end = nullptr;
  switch (flag.kind) {
    case Kind::kInt64: {
      long long v = std::strtoll(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') {
        return false;
      }
      *static_cast<int64_t*>(flag.target) = v;
      return true;
    }
    case Kind::kInt: {
      long v = std::strtol(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') {
        return false;
      }
      *static_cast<int*>(flag.target) = static_cast<int>(v);
      return true;
    }
    case Kind::kDouble: {
      double v = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0') {
        return false;
      }
      *static_cast<double*>(flag.target) = v;
      return true;
    }
    case Kind::kBool: {
      if (value == "true" || value == "1") {
        *static_cast<bool*>(flag.target) = true;
        return true;
      }
      if (value == "false" || value == "0") {
        *static_cast<bool*>(flag.target) = false;
        return true;
      }
      return false;
    }
    case Kind::kString: {
      *static_cast<std::string*>(flag.target) = value;
      return true;
    }
  }
  return false;
}

bool FlagParser::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(Usage(argv[0]).c_str(), stderr);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected positional argument: %s\n", arg.c_str());
      return false;
    }
    std::string body = arg.substr(2);
    std::string value;
    bool has_value = false;
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      value = body.substr(eq + 1);
      body = body.substr(0, eq);
      has_value = true;
    }

    const Flag* flag = Find(body);
    if (flag == nullptr && body.rfind("no-", 0) == 0) {
      const Flag* base = Find(body.substr(3));
      if (base != nullptr && base->kind == Kind::kBool && !has_value) {
        *static_cast<bool*>(base->target) = false;
        continue;
      }
    }
    if (flag == nullptr) {
      std::fprintf(stderr, "unknown flag: --%s\n%s", body.c_str(), Usage(argv[0]).c_str());
      return false;
    }
    if (!has_value) {
      if (flag->kind == Kind::kBool) {
        *static_cast<bool*>(flag->target) = true;
        continue;
      }
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flag --%s needs a value\n", body.c_str());
        return false;
      }
      value = argv[++i];
    }
    if (!Assign(*flag, value)) {
      std::fprintf(stderr, "bad value for --%s: '%s'\n", body.c_str(), value.c_str());
      return false;
    }
  }
  return true;
}

std::string FlagParser::Usage(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [flags]\n";
  for (const Flag& f : flags_) {
    os << "  --" << f.name << "  " << f.help << "\n";
  }
  return os.str();
}

}  // namespace bds
