// Fundamental identifier and unit types shared by every BDS module.
//
// The simulator is a fluid model: byte counts and rates are doubles so that
// fractional progress within a scheduling cycle is representable. Identifier
// types are thin integer aliases; kInvalid* sentinels mark "unset".

#ifndef BDS_SRC_COMMON_TYPES_H_
#define BDS_SRC_COMMON_TYPES_H_

#include <cstdint>
#include <limits>

namespace bds {

// Identifiers. Dense, zero-based, assigned by the owning container.
using DcId = int32_t;      // A datacenter.
using ServerId = int32_t;  // A server (overlay node) within some DC.
using LinkId = int32_t;    // A directed capacity-constrained link.
using PathId = int32_t;    // An enumerated overlay/WAN path.
using BlockId = int64_t;   // A data block (unit of scheduling).
using JobId = int64_t;     // A multicast transfer (one file, one source DC, many dests).
using FlowId = int64_t;    // An active transfer of bytes along a path in the simulator.

inline constexpr DcId kInvalidDc = -1;
inline constexpr ServerId kInvalidServer = -1;
inline constexpr LinkId kInvalidLink = -1;
inline constexpr PathId kInvalidPath = -1;
inline constexpr BlockId kInvalidBlock = -1;
inline constexpr JobId kInvalidJob = -1;
inline constexpr FlowId kInvalidFlow = -1;

// Units. Seconds / bytes / bytes-per-second throughout; helpers below convert.
using SimTime = double;  // Seconds since simulation start.
using Bytes = double;    // Fluid byte count.
using Rate = double;     // Bytes per second.

inline constexpr SimTime kTimeInfinity = std::numeric_limits<double>::infinity();

inline constexpr Bytes KB(double v) { return v * 1e3; }
inline constexpr Bytes MB(double v) { return v * 1e6; }
inline constexpr Bytes GB(double v) { return v * 1e9; }
inline constexpr Bytes TB(double v) { return v * 1e12; }

// Rates are commonly quoted in the paper in Mbps / MBps / GBps.
inline constexpr Rate Mbps(double v) { return v * 1e6 / 8.0; }
inline constexpr Rate Gbps(double v) { return v * 1e9 / 8.0; }
inline constexpr Rate MBps(double v) { return v * 1e6; }
inline constexpr Rate GBps(double v) { return v * 1e9; }

inline constexpr double ToMinutes(SimTime seconds) { return seconds / 60.0; }
inline constexpr SimTime Minutes(double m) { return m * 60.0; }
inline constexpr SimTime Hours(double h) { return h * 3600.0; }

// Floating-point slop used when comparing byte counts and rates. The fluid
// model accumulates rounding error proportional to the number of events; one
// part in 10^6 of a byte/second is far below any quantity we care about.
inline constexpr double kFluidEpsilon = 1e-6;

inline bool ApproxEqual(double a, double b, double eps = kFluidEpsilon) {
  double scale = (a < 0 ? -a : a) > (b < 0 ? -b : b) ? (a < 0 ? -a : a) : (b < 0 ? -b : b);
  double tol = eps * (scale > 1.0 ? scale : 1.0);
  double d = a - b;
  return (d < 0 ? -d : d) <= tol;
}

}  // namespace bds

#endif  // BDS_SRC_COMMON_TYPES_H_
