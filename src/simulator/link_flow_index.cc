#include "src/simulator/link_flow_index.h"

#include "src/common/status.h"

namespace bds {

void LinkFlowIndex::Reset(int num_links) {
  by_link_.assign(static_cast<size_t>(num_links), {});
  link_stamp_.assign(static_cast<size_t>(num_links), 0);
  gen_ = 0;
}

void LinkFlowIndex::Add(FlowSoA& soa, int32_t slot) {
  const LinkId* links = soa.links(slot);
  int32_t* pos = soa.inc_pos(slot);
  int32_t n = soa.num_links(slot);
  for (int32_t i = 0; i < n; ++i) {
    auto& row = by_link_[static_cast<size_t>(links[i])];
    pos[i] = static_cast<int32_t>(row.size());
    row.push_back(LinkFlowEntry{slot, i});
  }
}

void LinkFlowIndex::Remove(FlowSoA& soa, int32_t slot) {
  const LinkId* links = soa.links(slot);
  const int32_t* pos = soa.inc_pos(slot);
  int32_t n = soa.num_links(slot);
  for (int32_t i = 0; i < n; ++i) {
    auto& row = by_link_[static_cast<size_t>(links[i])];
    size_t p = static_cast<size_t>(pos[i]);
    BDS_CHECK(p < row.size() && row[p].slot == slot);
    if (p + 1 != row.size()) {
      row[p] = row.back();
      soa.inc_pos(row[p].slot)[row[p].hop] = static_cast<int32_t>(p);
#ifndef NDEBUG
      // The patched entry must still describe this link from the moved
      // flow's perspective — a desync here corrupts every later swap-erase.
      BDS_CHECK(soa.links(row[p].slot)[row[p].hop] == links[i]);
#endif
    }
    row.pop_back();
  }
}

bool LinkFlowIndex::GatherFrom(LinkId seed, FlowSoA& soa, std::vector<int32_t>* out) {
  size_t s = static_cast<size_t>(seed);
  if (link_stamp_[s] == gen_) {
    return false;
  }
  link_stamp_[s] = gen_;
  if (by_link_[s].empty()) {
    return false;
  }
  queue_.clear();
  queue_.push_back(seed);
  const size_t out_base = out->size();
  size_t scan = out_base;  // Slots whose paths have been expanded so far.
  for (size_t head = 0; head < queue_.size(); ++head) {
    const auto& row = by_link_[static_cast<size_t>(queue_[head])];
    const size_t rn = row.size();
    // Pass A: append this row's unvisited slots. Whether a slot was already
    // stamped is data-dependent per entry — a branch here mispredicts on
    // roughly every other entry once rows overlap — so stamp unconditionally
    // and grow the output by the (0 or 1) freshness flag instead.
    out->resize(out->size() + rn);
    int32_t* dst = out->data() + scan;
    size_t w = 0;
    for (size_t ri = 0; ri < rn; ++ri) {
      // The row's slots are scattered across the pool (different line each),
      // so issue their meta loads (stamp + path in one line) 8 entries ahead.
      if (ri + 8 < rn) {
        __builtin_prefetch(&soa.meta[static_cast<size_t>(row[ri + 8].slot)], 1);
      }
      int32_t fs = row[ri].slot;
      FlowMeta& m = soa.meta[static_cast<size_t>(fs)];
      size_t fresh = m.visit_stamp != gen_ ? 1 : 0;
      m.visit_stamp = gen_;
      dst[w] = fs;
      w += fresh;
    }
    out->resize(scan + w);
    // Pass B: expand only the freshly appended slots — their meta lines are
    // still hot from pass A — enqueuing any link not yet seen this epoch.
    const size_t out_n = out->size();
    for (; scan < out_n; ++scan) {
      if (scan + 4 < out_n) {
        const PathRef& pr = soa.meta[static_cast<size_t>((*out)[scan + 4])].path;
        __builtin_prefetch(&soa.path_links[static_cast<size_t>(pr.begin)]);
      }
      const FlowMeta& m = soa.meta[static_cast<size_t>((*out)[scan])];
      const LinkId* links = soa.path_links.data() + m.path.begin;
      int32_t n = m.path.len;
      for (int32_t i = 0; i < n; ++i) {
        size_t li = static_cast<size_t>(links[i]);
        if (link_stamp_[li] != gen_) {
          link_stamp_[li] = gen_;
          queue_.push_back(links[i]);
        }
      }
    }
  }
  return out->size() != out_base;
}

void LinkFlowIndex::RemapSlots(const std::vector<int32_t>& old_to_new) {
  for (auto& row : by_link_) {
    for (LinkFlowEntry& e : row) {
      int32_t ns = old_to_new[static_cast<size_t>(e.slot)];
      BDS_CHECK(ns >= 0);  // Only live flows are indexed.
      e.slot = ns;
    }
  }
}

void LinkFlowIndex::CheckConsistency(const FlowSoA& soa) const {
  for (size_t link = 0; link < by_link_.size(); ++link) {
    const auto& row = by_link_[link];
    for (size_t p = 0; p < row.size(); ++p) {
      const LinkFlowEntry& e = row[p];
      BDS_CHECK(soa.live(e.slot));
      BDS_CHECK(e.hop >= 0 && e.hop < soa.num_links(e.slot));
      BDS_CHECK(soa.links(e.slot)[e.hop] == static_cast<LinkId>(link));
      BDS_CHECK(soa.inc_pos(e.slot)[e.hop] == static_cast<int32_t>(p));
    }
  }
}

}  // namespace bds
