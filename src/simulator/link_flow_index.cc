#include "src/simulator/link_flow_index.h"

#include "src/common/status.h"

namespace bds {

void LinkFlowIndex::Reset(int num_links) {
  by_link_.assign(static_cast<size_t>(num_links), {});
  link_stamp_.assign(static_cast<size_t>(num_links), 0);
  gen_ = 0;
}

void LinkFlowIndex::Add(Flow* flow) {
  flow->incidence_pos.resize(flow->links.size());
  for (size_t i = 0; i < flow->links.size(); ++i) {
    auto& row = by_link_[static_cast<size_t>(flow->links[i])];
    flow->incidence_pos[i] = static_cast<int32_t>(row.size());
    row.push_back(LinkFlowEntry{flow, static_cast<int32_t>(i)});
  }
}

void LinkFlowIndex::Remove(Flow* flow) {
  for (size_t i = 0; i < flow->links.size(); ++i) {
    auto& row = by_link_[static_cast<size_t>(flow->links[i])];
    size_t pos = static_cast<size_t>(flow->incidence_pos[i]);
    BDS_CHECK(pos < row.size() && row[pos].flow == flow);
    if (pos + 1 != row.size()) {
      row[pos] = row.back();
      row[pos].flow->incidence_pos[static_cast<size_t>(row[pos].hop)] =
          static_cast<int32_t>(pos);
    }
    row.pop_back();
  }
  flow->incidence_pos.clear();
}

bool LinkFlowIndex::GatherFrom(LinkId seed, std::vector<Flow*>* out) {
  size_t s = static_cast<size_t>(seed);
  if (link_stamp_[s] == gen_) {
    return false;
  }
  link_stamp_[s] = gen_;
  if (by_link_[s].empty()) {
    return false;
  }
  queue_.clear();
  queue_.push_back(seed);
  bool any = false;
  for (size_t head = 0; head < queue_.size(); ++head) {
    const auto& row = by_link_[static_cast<size_t>(queue_[head])];
    for (const LinkFlowEntry& e : row) {
      Flow* f = e.flow;
      if (f->visit_stamp == gen_) {
        continue;
      }
      f->visit_stamp = gen_;
      out->push_back(f);
      any = true;
      for (LinkId l : f->links) {
        size_t li = static_cast<size_t>(l);
        if (link_stamp_[li] != gen_) {
          link_stamp_[li] = gen_;
          queue_.push_back(l);
        }
      }
    }
  }
  return any;
}

}  // namespace bds
