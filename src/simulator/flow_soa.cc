#include "src/simulator/flow_soa.h"

#include "src/common/status.h"

namespace bds {

int32_t FlowSoA::Allocate(FlowId flow_id, const LinkId* path, int32_t len) {
  BDS_CHECK(len > 0);
  int32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    size_t s = static_cast<size_t>(slot);
    if (len <= path_cap_[s]) {
      arena_dead_ += path_cap_[s] - len;  // Tail of the row goes unused.
      path_cap_[s] = len;
    } else {
      // The old row is too small: orphan it and append a fresh one.
      arena_dead_ += path_cap_[s];
      meta[s].path.begin = static_cast<int32_t>(path_links.size());
      path_cap_[s] = len;
      path_links.resize(path_links.size() + static_cast<size_t>(len));
      incidence_pos.resize(path_links.size());
    }
    meta[s].path.len = len;
  } else {
    slot = static_cast<int32_t>(meta.size());
    remaining.push_back(0.0);
    anchor_time.push_back(0.0);
    current_rate.push_back(0.0);
    rate_epoch.push_back(0);
    heap_epoch.push_back(0);
    FlowMeta m;
    m.path = PathRef{static_cast<int32_t>(path_links.size()), len};
    meta.push_back(m);
    total_bytes.push_back(0.0);
    start_time.push_back(0.0);
    tag.push_back(0);
    tag2.push_back(0);
    reported_rate.push_back(0.0);
    path_cap_.push_back(len);
    live_.push_back(0);
    path_links.resize(path_links.size() + static_cast<size_t>(len));
    incidence_pos.resize(path_links.size());
  }
  size_t s = static_cast<size_t>(slot);
  LinkId* row = path_links.data() + meta[s].path.begin;
  for (int32_t i = 0; i < len; ++i) {
    row[i] = path[i];
  }
  remaining[s] = 0.0;
  anchor_time[s] = 0.0;
  current_rate[s] = 0.0;
  meta[s].pinned_rate = 0.0;
  meta[s].id = flow_id;
  total_bytes[s] = 0.0;
  start_time[s] = 0.0;
  tag[s] = 0;
  tag2[s] = 0;
  reported_rate[s] = 0.0;
  live_[s] = 1;
  ++num_live_;
  return slot;
}

void FlowSoA::Free(int32_t slot) {
  size_t s = static_cast<size_t>(slot);
  BDS_CHECK(live_[s]);
  live_[s] = 0;
  meta[s].id = kInvalidFlow;
  free_slots_.push_back(slot);
  --num_live_;
}

void FlowSoA::Clear() {
  remaining.clear();
  anchor_time.clear();
  current_rate.clear();
  rate_epoch.clear();
  heap_epoch.clear();
  meta.clear();
  total_bytes.clear();
  start_time.clear();
  tag.clear();
  tag2.clear();
  reported_rate.clear();
  path_links.clear();
  incidence_pos.clear();
  path_cap_.clear();
  live_.clear();
  free_slots_.clear();
  num_live_ = 0;
  arena_dead_ = 0;
}

void FlowSoA::MaybeCompactArena() {
  int64_t attached = static_cast<int64_t>(path_links.size()) - arena_dead_;
  if (arena_dead_ <= attached + 1024) {
    return;
  }
  // Rewrite every slot's row (live or free-with-row) contiguously, trimming
  // each to its current length; free slots keep nothing.
  HugeVector<LinkId> new_links;
  HugeVector<int32_t> new_pos;
  new_links.reserve(static_cast<size_t>(attached));
  new_pos.reserve(static_cast<size_t>(attached));
  for (size_t s = 0; s < meta.size(); ++s) {
    if (!live_[s]) {
      path_cap_[s] = 0;
      meta[s].path = PathRef{};
      continue;
    }
    int32_t begin = meta[s].path.begin;
    int32_t len = meta[s].path.len;
    int32_t new_begin = static_cast<int32_t>(new_links.size());
    for (int32_t i = 0; i < len; ++i) {
      new_links.push_back(path_links[static_cast<size_t>(begin + i)]);
      new_pos.push_back(incidence_pos[static_cast<size_t>(begin + i)]);
    }
    meta[s].path.begin = new_begin;
    path_cap_[s] = len;
  }
  path_links = std::move(new_links);
  incidence_pos = std::move(new_pos);
  arena_dead_ = 0;
}

void FlowSoA::CompactAndReorder(const int32_t* order, int32_t n,
                                std::vector<int32_t>* old_to_new) {
  BDS_CHECK(n == num_live_);
  old_to_new->assign(meta.size(), -1);
  size_t un = static_cast<size_t>(n);
  HugeVector<Bytes> new_remaining;
  HugeVector<SimTime> new_anchor;
  HugeVector<Rate> new_rate;
  HugeVector<uint32_t> new_repoch;
  HugeVector<uint32_t> new_hepoch;
  HugeVector<FlowMeta> new_meta;
  HugeVector<Bytes> new_total;
  HugeVector<SimTime> new_start;
  HugeVector<int64_t> new_tag;
  HugeVector<int64_t> new_tag2;
  HugeVector<Rate> new_reported;
  HugeVector<LinkId> new_links;
  HugeVector<int32_t> new_pos;
  std::vector<int32_t> new_cap;
  new_remaining.reserve(un);
  new_anchor.reserve(un);
  new_rate.reserve(un);
  new_repoch.reserve(un);
  new_hepoch.reserve(un);
  new_meta.reserve(un);
  new_total.reserve(un);
  new_start.reserve(un);
  new_tag.reserve(un);
  new_tag2.reserve(un);
  new_reported.reserve(un);
  new_links.reserve(static_cast<size_t>(static_cast<int64_t>(path_links.size()) - arena_dead_));
  new_pos.reserve(new_links.capacity());
  new_cap.reserve(un);
  for (int32_t i = 0; i < n; ++i) {
    size_t os = static_cast<size_t>(order[i]);
    BDS_CHECK(live_[os] && (*old_to_new)[os] == -1);
    (*old_to_new)[os] = i;
    new_remaining.push_back(remaining[os]);
    new_anchor.push_back(anchor_time[os]);
    new_rate.push_back(current_rate[os]);
    new_repoch.push_back(rate_epoch[os]);
    new_hepoch.push_back(heap_epoch[os]);
    new_total.push_back(total_bytes[os]);
    new_start.push_back(start_time[os]);
    new_tag.push_back(tag[os]);
    new_tag2.push_back(tag2[os]);
    new_reported.push_back(reported_rate[os]);
    FlowMeta m = meta[os];
    int32_t begin = m.path.begin;
    m.path.begin = static_cast<int32_t>(new_links.size());
    for (int32_t j = 0; j < m.path.len; ++j) {
      new_links.push_back(path_links[static_cast<size_t>(begin + j)]);
      new_pos.push_back(incidence_pos[static_cast<size_t>(begin + j)]);
    }
    new_meta.push_back(m);
    new_cap.push_back(m.path.len);
  }
  remaining = std::move(new_remaining);
  anchor_time = std::move(new_anchor);
  current_rate = std::move(new_rate);
  rate_epoch = std::move(new_repoch);
  heap_epoch = std::move(new_hepoch);
  meta = std::move(new_meta);
  total_bytes = std::move(new_total);
  start_time = std::move(new_start);
  tag = std::move(new_tag);
  tag2 = std::move(new_tag2);
  reported_rate = std::move(new_reported);
  path_links = std::move(new_links);
  incidence_pos = std::move(new_pos);
  path_cap_ = std::move(new_cap);
  live_.assign(un, 1);
  free_slots_.clear();
  arena_dead_ = 0;
}

}  // namespace bds
