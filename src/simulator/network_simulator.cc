#include "src/simulator/network_simulator.h"

#include <algorithm>
#include <cmath>

namespace bds {

NetworkSimulator::NetworkSimulator(const Topology* topo) : topo_(topo) {
  BDS_CHECK(topo != nullptr);
  background_.assign(static_cast<size_t>(topo->num_links()), 0.0);
  fault_factor_.assign(static_cast<size_t>(topo->num_links()), 1.0);
  link_bytes_.assign(static_cast<size_t>(topo->num_links()), 0.0);
}

StatusOr<FlowId> NetworkSimulator::StartFlow(std::vector<LinkId> links, Bytes bytes,
                                             Rate pinned_rate, int64_t tag, int64_t tag2) {
  if (links.empty()) {
    return InvalidArgumentError("StartFlow: empty link list");
  }
  for (LinkId l : links) {
    if (l < 0 || l >= topo_->num_links()) {
      return InvalidArgumentError("StartFlow: bad link id");
    }
  }
  if (bytes <= 0.0) {
    return InvalidArgumentError("StartFlow: bytes must be positive");
  }
  if (pinned_rate < 0.0) {
    return InvalidArgumentError("StartFlow: negative pinned rate");
  }
  auto flow = std::make_unique<Flow>();
  flow->id = next_flow_id_++;
  flow->links = std::move(links);
  flow->total_bytes = bytes;
  flow->remaining = bytes;
  flow->pinned_rate = pinned_rate;
  flow->start_time = now_;
  flow->tag = tag;
  flow->tag2 = tag2;
  FlowId id = flow->id;
  index_[id] = active_.size();
  active_.push_back(std::move(flow));
  rates_dirty_ = true;
  return id;
}

Status NetworkSimulator::RepinFlow(FlowId id, Rate pinned_rate) {
  auto it = index_.find(id);
  if (it == index_.end()) {
    return NotFoundError("RepinFlow: no such active flow");
  }
  if (pinned_rate < 0.0) {
    return InvalidArgumentError("RepinFlow: negative rate");
  }
  active_[it->second]->pinned_rate = pinned_rate;
  rates_dirty_ = true;
  return Status::Ok();
}

StatusOr<Bytes> NetworkSimulator::CancelFlow(FlowId id) {
  auto it = index_.find(id);
  if (it == index_.end()) {
    return NotFoundError("CancelFlow: no such active flow");
  }
  size_t pos = it->second;
  Bytes delivered = active_[pos]->total_bytes - active_[pos]->remaining;
  // Swap-erase; fix the moved flow's index.
  index_.erase(it);
  if (pos + 1 != active_.size()) {
    std::swap(active_[pos], active_.back());
    index_[active_[pos]->id] = pos;
  }
  active_.pop_back();
  rates_dirty_ = true;
  return delivered;
}

const Flow* NetworkSimulator::FindFlow(FlowId id) const {
  auto it = index_.find(id);
  if (it == index_.end()) {
    return nullptr;
  }
  return active_[it->second].get();
}

Status NetworkSimulator::SetBackgroundRate(LinkId link, Rate rate) {
  if (link < 0 || link >= topo_->num_links()) {
    return InvalidArgumentError("SetBackgroundRate: bad link");
  }
  if (rate < 0.0) {
    return InvalidArgumentError("SetBackgroundRate: negative rate");
  }
  background_[static_cast<size_t>(link)] = rate;
  rates_dirty_ = true;
  return Status::Ok();
}

Rate NetworkSimulator::BackgroundRate(LinkId link) const {
  BDS_CHECK(link >= 0 && link < topo_->num_links());
  return background_[static_cast<size_t>(link)];
}

Status NetworkSimulator::SetLinkFaultFactor(LinkId link, double factor) {
  if (link < 0 || link >= topo_->num_links()) {
    return InvalidArgumentError("SetLinkFaultFactor: bad link");
  }
  if (factor < 0.0 || factor > 1.0) {
    return InvalidArgumentError("SetLinkFaultFactor: factor must be in [0, 1]");
  }
  fault_factor_[static_cast<size_t>(link)] = factor;
  rates_dirty_ = true;
  return Status::Ok();
}

double NetworkSimulator::LinkFaultFactor(LinkId link) const {
  BDS_CHECK(link >= 0 && link < topo_->num_links());
  return fault_factor_[static_cast<size_t>(link)];
}

std::vector<FlowId> NetworkSimulator::FlowsCrossingLink(LinkId link) const {
  std::vector<FlowId> out;
  for (const auto& f : active_) {
    for (LinkId l : f->links) {
      if (l == link) {
        out.push_back(f->id);
        break;
      }
    }
  }
  std::sort(out.begin(), out.end());  // active_ order changes with swap-erase.
  return out;
}

double NetworkSimulator::MaxCapacityViolation() const {
  std::vector<Rate> bulk(static_cast<size_t>(topo_->num_links()), 0.0);
  for (const auto& f : active_) {
    for (LinkId l : f->links) {
      bulk[static_cast<size_t>(l)] += f->current_rate;
    }
  }
  double worst = -kTimeInfinity;
  for (LinkId l = 0; l < topo_->num_links(); ++l) {
    size_t i = static_cast<size_t>(l);
    Rate nominal = topo_->link(l).capacity;
    if (nominal <= 0.0) {
      continue;
    }
    Rate usable = std::max(0.0, nominal * fault_factor_[i] - background_[i]);
    worst = std::max(worst, (bulk[i] - usable) / nominal);
  }
  return worst;
}

void NetworkSimulator::Reallocate() {
  capacities_scratch_.resize(static_cast<size_t>(topo_->num_links()));
  for (LinkId l = 0; l < topo_->num_links(); ++l) {
    capacities_scratch_[static_cast<size_t>(l)] =
        std::max(0.0, topo_->link(l).capacity * fault_factor_[static_cast<size_t>(l)] -
                          background_[static_cast<size_t>(l)]);
  }
  flow_ptrs_scratch_.clear();
  flow_ptrs_scratch_.reserve(active_.size());
  for (const auto& f : active_) {
    flow_ptrs_scratch_.push_back(f.get());
  }
  allocator_.Allocate(capacities_scratch_, flow_ptrs_scratch_);
  rates_dirty_ = false;
  SampleTrackedLinks();
}

SimTime NetworkSimulator::NextCompletionTime() const {
  SimTime best = kTimeInfinity;
  for (const auto& f : active_) {
    if (f->current_rate > 0.0) {
      best = std::min(best, now_ + f->remaining / f->current_rate);
    }
  }
  return best;
}

void NetworkSimulator::Step(SimTime dt) {
  BDS_CHECK(dt >= 0.0);
  if (dt == 0.0) {
    return;
  }
  // Transfer bytes.
  for (const auto& f : active_) {
    if (f->current_rate <= 0.0) {
      continue;
    }
    Bytes moved = std::min(f->remaining, f->current_rate * dt);
    f->remaining -= moved;
    for (LinkId l : f->links) {
      link_bytes_[static_cast<size_t>(l)] += moved;
    }
  }
  now_ += dt;

  // Collect completions (remaining ~ 0 relative to flow size).
  std::vector<FlowRecord> done;
  for (size_t i = 0; i < active_.size();) {
    Flow& f = *active_[i];
    if (f.remaining <= kFluidEpsilon * std::max(1.0, f.total_bytes)) {
      f.remaining = 0.0;
      f.end_time = now_;
      done.push_back(FlowRecord{f.id, f.total_bytes, f.start_time, f.end_time, f.tag, f.tag2});
      index_.erase(f.id);
      if (i + 1 != active_.size()) {
        std::swap(active_[i], active_.back());
        index_[active_[i]->id] = i;
      }
      active_.pop_back();
      rates_dirty_ = true;
      // Do not advance i: the swapped-in flow needs a check too.
    } else {
      ++i;
    }
  }
  for (FlowRecord& r : done) {
    completed_.push_back(r);
    if (on_complete_) {
      on_complete_(r);
    }
  }
}

Status NetworkSimulator::AdvanceTo(SimTime t) {
  if (t < now_ - kFluidEpsilon) {
    return InvalidArgumentError("AdvanceTo: time went backwards");
  }
  // Completion callbacks may start new flows, so the loop is bounded by a
  // generous safeguard rather than the initial flow count.
  constexpr int64_t kMaxEvents = 100'000'000;
  for (int64_t iter = 0; iter < kMaxEvents; ++iter) {
    if (rates_dirty_) {
      Reallocate();
    }
    SimTime next = NextCompletionTime();
    if (next >= t) {
      Step(t - now_);  // May still complete a flow landing exactly at t.
      return Status::Ok();
    }
    Step(next - now_);  // Completes at least one flow.
  }
  return InternalError("AdvanceTo: event cascade did not terminate");
}

StatusOr<SimTime> NetworkSimulator::RunUntilIdle(SimTime deadline) {
  while (!active_.empty()) {
    if (rates_dirty_) {
      Reallocate();
    }
    SimTime next = NextCompletionTime();
    if (!std::isfinite(next)) {
      return InternalError("RunUntilIdle: active flows but no progress (all rates zero)");
    }
    if (next > deadline) {
      BDS_RETURN_IF_ERROR(AdvanceTo(deadline));
      return now_;
    }
    Step(next - now_);
  }
  return now_;
}

Bytes NetworkSimulator::LinkBytesTransferred(LinkId link) const {
  BDS_CHECK(link >= 0 && link < topo_->num_links());
  return link_bytes_[static_cast<size_t>(link)];
}

Rate NetworkSimulator::LinkBulkRate(LinkId link) const {
  BDS_CHECK(link >= 0 && link < topo_->num_links());
  Rate sum = 0.0;
  for (const auto& f : active_) {
    for (LinkId l : f->links) {
      if (l == link) {
        sum += f->current_rate;
        break;
      }
    }
  }
  return sum;
}

double NetworkSimulator::LinkUtilization(LinkId link) const {
  const Link& l = topo_->link(link);
  if (l.capacity <= 0.0) {
    return 0.0;
  }
  return (LinkBulkRate(link) + background_[static_cast<size_t>(link)]) / l.capacity;
}

void NetworkSimulator::TrackLinkUtilization(LinkId link) {
  BDS_CHECK(link >= 0 && link < topo_->num_links());
  tracked_.emplace(link, TimeSeries("link" + std::to_string(link)));
}

const TimeSeries* NetworkSimulator::LinkUtilizationSeries(LinkId link) const {
  auto it = tracked_.find(link);
  return it == tracked_.end() ? nullptr : &it->second;
}

void NetworkSimulator::SampleTrackedLinks() {
  for (auto& [link, series] : tracked_) {
    series.Add(now_, LinkUtilization(link));
  }
}

}  // namespace bds
