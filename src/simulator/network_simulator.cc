#include "src/simulator/network_simulator.h"

#include <algorithm>
#include <cmath>

#include "src/telemetry/telemetry.h"

namespace bds {

NetworkSimulator::NetworkSimulator(const Topology* topo) : topo_(topo) {
  BDS_CHECK(topo != nullptr);
  size_t n = static_cast<size_t>(topo->num_links());
  background_.assign(n, 0.0);
  fault_factor_.assign(n, 1.0);
  usable_capacity_.resize(n);
  for (LinkId l = 0; l < topo->num_links(); ++l) {
    usable_capacity_[static_cast<size_t>(l)] = std::max(0.0, topo->link(l).capacity);
  }
  link_rate_.assign(n, 0.0);
  link_integrated_at_.assign(n, 0.0);
  link_bytes_.assign(n, 0.0);
  link_dirty_.assign(n, 0);
  incidence_.Reset(topo->num_links());
}

void NetworkSimulator::set_full_reallocation(bool on) {
  BDS_CHECK(active_.empty());  // Mode must be fixed before flows exist.
  full_realloc_ = on;
}

void NetworkSimulator::MarkDirty(LinkId link) {
  size_t li = static_cast<size_t>(link);
  if (!link_dirty_[li]) {
    link_dirty_[li] = 1;
    dirty_links_.push_back(link);
  }
  rates_dirty_ = true;
}

StatusOr<FlowId> NetworkSimulator::StartFlow(std::vector<LinkId> links, Bytes bytes,
                                             Rate pinned_rate, int64_t tag, int64_t tag2) {
  if (links.empty()) {
    return InvalidArgumentError("StartFlow: empty link list");
  }
  for (LinkId l : links) {
    if (l < 0 || l >= topo_->num_links()) {
      return InvalidArgumentError("StartFlow: bad link id");
    }
  }
  // A repeated link would double-count the flow in the incidence index and
  // the per-link rate aggregates; real paths are simple, so reject it.
  for (size_t i = 0; i < links.size(); ++i) {
    for (size_t j = i + 1; j < links.size(); ++j) {
      if (links[i] == links[j]) {
        return InvalidArgumentError("StartFlow: path repeats a link");
      }
    }
  }
  if (bytes <= 0.0) {
    return InvalidArgumentError("StartFlow: bytes must be positive");
  }
  if (pinned_rate < 0.0) {
    return InvalidArgumentError("StartFlow: negative pinned rate");
  }
  auto flow = std::make_unique<Flow>();
  flow->id = next_flow_id_++;
  flow->links = std::move(links);
  flow->total_bytes = bytes;
  flow->remaining = bytes;
  flow->anchor_time = now_;
  flow->pinned_rate = pinned_rate;
  flow->start_time = now_;
  flow->tag = tag;
  flow->tag2 = tag2;
  FlowId id = flow->id;
  Flow* raw = flow.get();
  index_[id] = active_.size();
  active_.push_back(std::move(flow));
  incidence_.Add(raw);
  for (LinkId l : raw->links) {
    MarkDirty(l);
  }
  BDS_TELEMETRY_COUNT("sim.flows_started", 1);
  telemetry::TraceInstant("sim.flow.start", "simulator",
                          {{"flow", static_cast<double>(id)},
                           {"bytes", bytes},
                           {"links", static_cast<double>(raw->links.size())}});
  return id;
}

Status NetworkSimulator::RepinFlow(FlowId id, Rate pinned_rate) {
  auto it = index_.find(id);
  if (it == index_.end()) {
    return NotFoundError("RepinFlow: no such active flow");
  }
  if (pinned_rate < 0.0) {
    return InvalidArgumentError("RepinFlow: negative rate");
  }
  Flow* f = active_[it->second].get();
  f->pinned_rate = pinned_rate;
  for (LinkId l : f->links) {
    MarkDirty(l);
  }
  return Status::Ok();
}

StatusOr<Bytes> NetworkSimulator::CancelFlow(FlowId id) {
  auto it = index_.find(id);
  if (it == index_.end()) {
    return NotFoundError("CancelFlow: no such active flow");
  }
  size_t pos = it->second;
  Flow* f = active_[pos].get();
  Bytes delivered = f->total_bytes - f->RemainingAt(now_);
  DetachFlow(f);
  EraseFromActive(pos);
  return delivered;
}

const Flow* NetworkSimulator::FindFlow(FlowId id) const {
  auto it = index_.find(id);
  if (it == index_.end()) {
    return nullptr;
  }
  return active_[it->second].get();
}

Status NetworkSimulator::SetBackgroundRate(LinkId link, Rate rate) {
  if (link < 0 || link >= topo_->num_links()) {
    return InvalidArgumentError("SetBackgroundRate: bad link");
  }
  if (rate < 0.0) {
    return InvalidArgumentError("SetBackgroundRate: negative rate");
  }
  size_t li = static_cast<size_t>(link);
  background_[li] = rate;
  usable_capacity_[li] =
      std::max(0.0, topo_->link(link).capacity * fault_factor_[li] - rate);
  MarkDirty(link);
  return Status::Ok();
}

Rate NetworkSimulator::BackgroundRate(LinkId link) const {
  BDS_CHECK(link >= 0 && link < topo_->num_links());
  return background_[static_cast<size_t>(link)];
}

Status NetworkSimulator::SetLinkFaultFactor(LinkId link, double factor) {
  if (link < 0 || link >= topo_->num_links()) {
    return InvalidArgumentError("SetLinkFaultFactor: bad link");
  }
  if (factor < 0.0 || factor > 1.0) {
    return InvalidArgumentError("SetLinkFaultFactor: factor must be in [0, 1]");
  }
  size_t li = static_cast<size_t>(link);
  fault_factor_[li] = factor;
  usable_capacity_[li] =
      std::max(0.0, topo_->link(link).capacity * factor - background_[li]);
  MarkDirty(link);
  return Status::Ok();
}

double NetworkSimulator::LinkFaultFactor(LinkId link) const {
  BDS_CHECK(link >= 0 && link < topo_->num_links());
  return fault_factor_[static_cast<size_t>(link)];
}

std::vector<FlowId> NetworkSimulator::FlowsCrossingLink(LinkId link) const {
  BDS_CHECK(link >= 0 && link < topo_->num_links());
  std::vector<FlowId> out;
  const auto& row = incidence_.at(link);
  out.reserve(row.size());
  for (const LinkFlowEntry& e : row) {
    out.push_back(e.flow->id);
  }
  std::sort(out.begin(), out.end());  // Row order changes with swap-erase.
  return out;
}

double NetworkSimulator::MaxCapacityViolation() const {
  double worst = -kTimeInfinity;
  bool any = false;
  for (LinkId l = 0; l < topo_->num_links(); ++l) {
    size_t i = static_cast<size_t>(l);
    Rate nominal = topo_->link(l).capacity;
    if (nominal <= 0.0) {
      continue;
    }
    any = true;
    Rate usable = std::max(0.0, nominal * fault_factor_[i] - background_[i]);
    worst = std::max(worst, (link_rate_[i] - usable) / nominal);
  }
  // No link with positive capacity means nothing can be violated.
  return any ? worst : 0.0;
}

void NetworkSimulator::IntegrateLink(LinkId link) {
  size_t li = static_cast<size_t>(link);
  if (link_integrated_at_[li] == now_) {
    return;
  }
  link_bytes_[li] += link_rate_[li] * (now_ - link_integrated_at_[li]);
  link_integrated_at_[li] = now_;
}

void NetworkSimulator::DetachFlow(Flow* f) {
  for (LinkId l : f->links) {
    IntegrateLink(l);
    link_rate_[static_cast<size_t>(l)] -= f->current_rate;
    MarkDirty(l);
  }
  incidence_.Remove(f);
  // Snap drained links to exactly zero so incremental -= drift can't leak
  // into byte integration or MaxCapacityViolation.
  for (LinkId l : f->links) {
    if (incidence_.at(l).empty()) {
      link_rate_[static_cast<size_t>(l)] = 0.0;
    }
  }
}

void NetworkSimulator::EraseFromActive(size_t pos) {
  index_.erase(active_[pos]->id);
  if (pos + 1 != active_.size()) {
    std::swap(active_[pos], active_.back());
    index_[active_[pos]->id] = pos;
  }
  active_.pop_back();
}

void NetworkSimulator::ReallocateComponent(LinkId seed) {
  comp_flows_.clear();
  if (!incidence_.GatherFrom(seed, &comp_flows_)) {
    return;
  }
  // Canonical order: AllocateSubset must see the same sequence no matter
  // which seed found the component or how BFS traversed it.
  std::sort(comp_flows_.begin(), comp_flows_.end(),
            [](const Flow* a, const Flow* b) { return a->id < b->id; });
  old_rates_.resize(comp_flows_.size());
  for (size_t i = 0; i < comp_flows_.size(); ++i) {
    old_rates_[i] = comp_flows_[i]->current_rate;
  }
  allocator_.AllocateSubset(usable_capacity_, comp_flows_);
  ++num_reallocations_;
  BDS_TELEMETRY_COUNT("sim.component_solves", 1);
  BDS_TELEMETRY_HISTOGRAM("sim.component_flows", 0.0, 1024.0, 64,
                          static_cast<double>(comp_flows_.size()));
  for (size_t i = 0; i < comp_flows_.size(); ++i) {
    Flow* f = comp_flows_[i];
    Rate new_rate = f->current_rate;
    if (new_rate == old_rates_[i]) {
      continue;  // Bitwise unchanged: anchor, epoch, and heap entry stay valid.
    }
    Bytes left = f->remaining - old_rates_[i] * (now_ - f->anchor_time);
    f->remaining = left > 0.0 ? left : 0.0;
    f->anchor_time = now_;
    ++f->rate_epoch;
    for (LinkId l : f->links) {
      IntegrateLink(l);
      link_rate_[static_cast<size_t>(l)] += new_rate - old_rates_[i];
    }
    if (!full_realloc_ && new_rate > 0.0) {
      heap_.push_back(CompletionEntry{CompletionKey(*f), f->id, f->rate_epoch});
      std::push_heap(heap_.begin(), heap_.end(), EntryAfter{});
    }
  }
}

void NetworkSimulator::Reallocate() {
  incidence_.BeginEpoch();
  telemetry::TraceInstant("sim.reallocate", "simulator",
                          {{"dirty_links", static_cast<double>(dirty_links_.size())},
                           {"active_flows", static_cast<double>(active_.size())}});
  BDS_TELEMETRY_COUNT("sim.reallocations", 1);
  BDS_TELEMETRY_COUNT("sim.dirty_links", static_cast<int64_t>(dirty_links_.size()));
  if (full_realloc_) {
    // Reference mode: re-solve every component regardless of dirtiness.
    for (LinkId l = 0; l < topo_->num_links(); ++l) {
      ReallocateComponent(l);
    }
  } else {
    std::sort(dirty_links_.begin(), dirty_links_.end());
    for (LinkId l : dirty_links_) {
      ReallocateComponent(l);
    }
  }
  for (LinkId l : dirty_links_) {
    link_dirty_[static_cast<size_t>(l)] = 0;
  }
  dirty_links_.clear();
  rates_dirty_ = false;
  if (!full_realloc_ && heap_.size() > 1024 && heap_.size() > 8 * (active_.size() + 1)) {
    CompactHeap();
  }
  SampleTrackedLinks();
}

void NetworkSimulator::CompactHeap() {
  size_t w = 0;
  for (const CompletionEntry& e : heap_) {
    auto it = index_.find(e.id);
    if (it == index_.end() || active_[it->second]->rate_epoch != e.epoch) {
      continue;
    }
    heap_[w++] = e;
  }
  heap_.resize(w);
  std::make_heap(heap_.begin(), heap_.end(), EntryAfter{});
}

SimTime NetworkSimulator::NextCompletionTime() {
  if (full_realloc_) {
    SimTime best = kTimeInfinity;
    for (const auto& f : active_) {
      SimTime k = CompletionKey(*f);
      if (k < best) {
        best = k;
      }
    }
    return best;
  }
  while (!heap_.empty()) {
    const CompletionEntry& e = heap_.front();
    auto it = index_.find(e.id);
    if (it != index_.end() && active_[it->second]->rate_epoch == e.epoch) {
      return e.key;  // Valid top; leave it for CompleteBatch.
    }
    std::pop_heap(heap_.begin(), heap_.end(), EntryAfter{});
    heap_.pop_back();
  }
  return kTimeInfinity;
}

void NetworkSimulator::CompleteBatch(SimTime t) {
  batch_ids_.clear();
  if (full_realloc_) {
    for (const auto& f : active_) {
      if (CompletionKey(*f) == t) {
        batch_ids_.push_back(f->id);
      }
    }
  } else {
    // Every flow with a finite projected completion has exactly one
    // current-epoch heap entry, so popping the key == t prefix (skipping
    // stale entries) yields exactly the batch.
    while (!heap_.empty() && heap_.front().key <= t) {
      CompletionEntry e = heap_.front();
      std::pop_heap(heap_.begin(), heap_.end(), EntryAfter{});
      heap_.pop_back();
      auto it = index_.find(e.id);
      if (it == index_.end() || active_[it->second]->rate_epoch != e.epoch) {
        continue;
      }
      BDS_CHECK(e.key == t);  // A live completion earlier than now_ is a bug.
      batch_ids_.push_back(e.id);
    }
  }
  std::sort(batch_ids_.begin(), batch_ids_.end());
  BDS_CHECK(!batch_ids_.empty());

  size_t first_record = completed_.size();
  for (FlowId id : batch_ids_) {
    auto it = index_.find(id);
    BDS_CHECK(it != index_.end());
    size_t pos = it->second;
    Flow* f = active_[pos].get();
    f->remaining = 0.0;
    f->anchor_time = t;
    f->end_time = t;
    completed_.push_back(
        FlowRecord{f->id, f->total_bytes, f->start_time, f->end_time, f->tag, f->tag2});
    DetachFlow(f);
    EraseFromActive(pos);
  }
  ++num_events_;
  BDS_TELEMETRY_COUNT("sim.events", 1);
  BDS_TELEMETRY_COUNT("sim.flows_completed", static_cast<int64_t>(batch_ids_.size()));
  telemetry::TraceInstant("sim.complete_batch", "simulator",
                          {{"flows", static_cast<double>(batch_ids_.size())},
                           {"sim_time", t}});

  // Callbacks fire after the whole batch is detached, so callback-started
  // flows can never share an allocation round with the finished batch.
  if (on_complete_) {
    size_t last_record = completed_.size();
    for (size_t i = first_record; i < last_record; ++i) {
      FlowRecord r = completed_[i];  // Copy: callbacks may grow completed_.
      on_complete_(r);
    }
  }

  // Bounded history for long-running service mode: drop the oldest records
  // once the cap is exceeded (amortized — only when the overshoot is large
  // enough to be worth the memmove).
  if (completed_history_limit_ >= 0 &&
      static_cast<int64_t>(completed_.size()) >
          completed_history_limit_ + completed_history_limit_ / 2 + 64) {
    const int64_t drop = static_cast<int64_t>(completed_.size()) - completed_history_limit_;
    completed_.erase(completed_.begin(), completed_.begin() + drop);
    dropped_flow_records_ += drop;
  }
}

Status NetworkSimulator::AdvanceTo(SimTime t) {
  if (t < now_ - kFluidEpsilon) {
    return InvalidArgumentError("AdvanceTo: time went backwards");
  }
  if (t < now_) {
    t = now_;  // Within the fluid tolerance: clamp instead of stepping back.
  }
  // Completion callbacks may start new flows, so the loop is bounded by a
  // generous safeguard rather than the initial flow count.
  constexpr int64_t kMaxEvents = 100'000'000;
  for (int64_t iter = 0; iter < kMaxEvents; ++iter) {
    if (rates_dirty_) {
      Reallocate();
    }
    SimTime next = NextCompletionTime();
    if (next > t) {
      now_ = t;
      return Status::Ok();
    }
    now_ = next;
    CompleteBatch(next);  // Includes flows landing exactly at t.
  }
  return InternalError("AdvanceTo: event cascade did not terminate");
}

StatusOr<SimTime> NetworkSimulator::RunUntilIdle(SimTime deadline) {
  while (!active_.empty()) {
    if (rates_dirty_) {
      Reallocate();
    }
    SimTime next = NextCompletionTime();
    if (!std::isfinite(next)) {
      return InternalError("RunUntilIdle: active flows but no progress (all rates zero)");
    }
    if (next > deadline) {
      BDS_RETURN_IF_ERROR(AdvanceTo(deadline));
      SampleTrackedLinks();  // Series must end at the actual end time.
      return now_;
    }
    now_ = next;
    CompleteBatch(next);
  }
  SampleTrackedLinks();  // Series must end at the actual end time.
  return now_;
}

Bytes NetworkSimulator::LinkBytesTransferred(LinkId link) const {
  BDS_CHECK(link >= 0 && link < topo_->num_links());
  size_t li = static_cast<size_t>(link);
  // link_bytes_ is integrated up to link_integrated_at_; extend to now_.
  return link_bytes_[li] + link_rate_[li] * (now_ - link_integrated_at_[li]);
}

Rate NetworkSimulator::LinkBulkRate(LinkId link) const {
  BDS_CHECK(link >= 0 && link < topo_->num_links());
  return link_rate_[static_cast<size_t>(link)];
}

double NetworkSimulator::LinkUtilization(LinkId link) const {
  const Link& l = topo_->link(link);
  if (l.capacity <= 0.0) {
    return 0.0;
  }
  return (LinkBulkRate(link) + background_[static_cast<size_t>(link)]) / l.capacity;
}

void NetworkSimulator::TrackLinkUtilization(LinkId link) {
  BDS_CHECK(link >= 0 && link < topo_->num_links());
  tracked_.emplace(link, TimeSeries("link" + std::to_string(link)));
}

const TimeSeries* NetworkSimulator::LinkUtilizationSeries(LinkId link) const {
  auto it = tracked_.find(link);
  return it == tracked_.end() ? nullptr : &it->second;
}

void NetworkSimulator::SampleTrackedLinks() {
  for (auto& [link, series] : tracked_) {
    series.Add(now_, LinkUtilization(link));
  }
}

}  // namespace bds
