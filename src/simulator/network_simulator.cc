#include "src/simulator/network_simulator.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "src/telemetry/telemetry.h"

namespace bds {

NetworkSimulator::NetworkSimulator(const Topology* topo) : topo_(topo) {
  BDS_CHECK(topo != nullptr);
  size_t n = static_cast<size_t>(topo->num_links());
  background_.assign(n, 0.0);
  fault_factor_.assign(n, 1.0);
  usable_capacity_.resize(n);
  for (LinkId l = 0; l < topo->num_links(); ++l) {
    usable_capacity_[static_cast<size_t>(l)] = std::max(0.0, topo->link(l).capacity);
  }
  link_rate_.assign(n, 0.0);
  link_integrated_at_.assign(n, 0.0);
  link_bytes_.assign(n, 0.0);
  link_dirty_.assign(n, 0);
  incidence_.Reset(topo->num_links());
}

void NetworkSimulator::set_full_reallocation(bool on) {
  BDS_CHECK(soa_.num_live() == 0);  // Mode must be fixed before flows exist.
  full_realloc_ = on;
}

void NetworkSimulator::MarkDirty(LinkId link) {
  size_t li = static_cast<size_t>(link);
  if (!link_dirty_[li]) {
    link_dirty_[li] = 1;
    dirty_links_.push_back(link);
  }
  rates_dirty_ = true;
}

void NetworkSimulator::BeginBatch() {
  BDS_CHECK(!in_batch_);
  in_batch_ = true;
  batch_adds_ = 0;
}

void NetworkSimulator::FlushBatchAdds() {
  for (int32_t slot : pending_adds_) {
    incidence_.Add(soa_, slot);
    const LinkId* links = soa_.links(slot);
    int32_t n = soa_.num_links(slot);
    for (int32_t i = 0; i < n; ++i) {
      MarkDirty(links[i]);
    }
  }
  pending_adds_.clear();
}

namespace {
// Reorder only when a batch lands enough flows to matter and they make up a
// big share of the pool: a bulk submission (initial load, controller cycle
// restart) pays one O(live) pass; a steady trickle of small batches never
// triggers repeated rewrites.
constexpr int64_t kReorderMinBatchAdds = 4096;
}  // namespace

void NetworkSimulator::CommitBatch() {
  FlushBatchAdds();
  in_batch_ = false;
  if (batch_adds_ >= kReorderMinBatchAdds &&
      batch_adds_ * 2 >= static_cast<int64_t>(soa_.num_live())) {
    ReorderSlotsForLocality();
  }
  batch_adds_ = 0;
}

void NetworkSimulator::ReorderSlotsForLocality() {
  const int32_t n = soa_.num_live();
  if (n == 0) {
    return;
  }
  // Lay the pool out component by component, ascending flow id within each
  // component (components enumerated by ascending seed link, so the order is
  // deterministic however live_slots_ is arranged). Two payoffs: a component
  // solve scans a contiguous id-ordered slot range, and ReallocateComponent's
  // cheap slot-sort canonicalization stays valid as components shrink or
  // split — any subset of an id-ascending range is still id-ascending.
  incidence_.BeginEpoch();
  comp_slots_.clear();  // Borrow the solve scratch for the permutation.
  comp_slots_.reserve(static_cast<size_t>(n));
  for (LinkId l = 0; l < topo_->num_links(); ++l) {
    size_t before = comp_slots_.size();
    if (!incidence_.GatherFrom(l, soa_, &comp_slots_)) {
      continue;
    }
    std::sort(comp_slots_.begin() + static_cast<int64_t>(before), comp_slots_.end(),
              [this](int32_t a, int32_t b) {
                return soa_.meta[static_cast<size_t>(a)].id < soa_.meta[static_cast<size_t>(b)].id;
              });
  }
  // Every live flow has a non-empty path (StartFlow rejects empty ones), so
  // the component sweep visited each exactly once.
  BDS_CHECK(comp_slots_.size() == static_cast<size_t>(n));
  soa_.CompactAndReorder(comp_slots_.data(), n, &old_to_new_);
  incidence_.RemapSlots(old_to_new_);
  for (int32_t& s : id_to_slot_) {
    if (s >= 0) {
      s = old_to_new_[static_cast<size_t>(s)];
    }
  }
  // New slot numbering is already dense, so the live list is the identity.
  live_slots_.resize(static_cast<size_t>(n));
  slot_live_pos_.assign(static_cast<size_t>(n), -1);
  for (int32_t i = 0; i < n; ++i) {
    live_slots_[static_cast<size_t>(i)] = i;
    slot_live_pos_[static_cast<size_t>(i)] = i;
  }
  // Heap entries follow their flow to its new slot; entries whose slot was
  // freed belong to finished flows and are dropped. CompactHeap then culls
  // entries invalidated by slot reuse (id mismatch) and restores the heap
  // property — pop order is unchanged because the comparator is a strict
  // total order on (key, id, epoch), which the remap does not touch.
  size_t w = 0;
  for (const CompletionEntry& e : heap_) {
    int32_t ns = old_to_new_[static_cast<size_t>(e.slot)];
    if (ns < 0) {
      continue;
    }
    heap_[w] = e;
    heap_[w].slot = ns;
    ++w;
  }
  heap_.resize(w);
  CompactHeap();
#ifndef NDEBUG
  incidence_.CheckConsistency(soa_);
#endif
}

StatusOr<FlowId> NetworkSimulator::StartFlow(std::vector<LinkId> links, Bytes bytes,
                                             Rate pinned_rate, int64_t tag, int64_t tag2) {
  if (links.empty()) {
    return InvalidArgumentError("StartFlow: empty link list");
  }
  for (LinkId l : links) {
    if (l < 0 || l >= topo_->num_links()) {
      return InvalidArgumentError("StartFlow: bad link id");
    }
  }
  // A repeated link would double-count the flow in the incidence index and
  // the per-link rate aggregates; real paths are simple, so reject it.
  for (size_t i = 0; i < links.size(); ++i) {
    for (size_t j = i + 1; j < links.size(); ++j) {
      if (links[i] == links[j]) {
        return InvalidArgumentError("StartFlow: path repeats a link");
      }
    }
  }
  if (bytes <= 0.0) {
    return InvalidArgumentError("StartFlow: bytes must be positive");
  }
  if (pinned_rate < 0.0) {
    return InvalidArgumentError("StartFlow: negative pinned rate");
  }
  FlowId id = next_flow_id_++;
  int32_t slot = soa_.Allocate(id, links.data(), static_cast<int32_t>(links.size()));
  size_t s = static_cast<size_t>(slot);
  soa_.remaining[s] = bytes;
  soa_.total_bytes[s] = bytes;
  soa_.anchor_time[s] = now_;
  soa_.meta[s].pinned_rate = pinned_rate;
  soa_.start_time[s] = now_;
  soa_.tag[s] = tag;
  soa_.tag2[s] = tag2;

  // Ids are assigned here and only here, so the dense id window extends by
  // exactly one entry per start.
  BDS_CHECK(id == id_base_ + static_cast<FlowId>(id_to_slot_.size()));
  id_to_slot_.push_back(slot);
  if (static_cast<size_t>(slot) >= slot_live_pos_.size()) {
    slot_live_pos_.resize(static_cast<size_t>(soa_.capacity()), -1);
  }
  slot_live_pos_[s] = static_cast<int32_t>(live_slots_.size());
  live_slots_.push_back(slot);

  if (in_batch_) {
    pending_adds_.push_back(slot);
    ++batch_adds_;
  } else {
    incidence_.Add(soa_, slot);
    for (size_t i = 0; i < links.size(); ++i) {
      MarkDirty(links[i]);
    }
  }
  // No per-flow trace instant here: at 1e5+ concurrent flows it would both
  // flood the ring (evicting the decision-level events) and pay a clock read
  // per start — trace.h's granularity contract is per solver call, not per
  // flow. sim.flows_started carries the count.
  ++telem_flows_started_;
  return id;
}

Status NetworkSimulator::RepinFlow(FlowId id, Rate pinned_rate) {
  if (!pending_adds_.empty()) {
    FlushBatchAdds();  // Keep batched submission order identical to unbatched.
  }
  int32_t slot = SlotOf(id);
  if (slot < 0) {
    return NotFoundError("RepinFlow: no such active flow");
  }
  if (pinned_rate < 0.0) {
    return InvalidArgumentError("RepinFlow: negative rate");
  }
  soa_.meta[static_cast<size_t>(slot)].pinned_rate = pinned_rate;
  const LinkId* links = soa_.links(slot);
  int32_t n = soa_.num_links(slot);
  for (int32_t i = 0; i < n; ++i) {
    MarkDirty(links[i]);
  }
  return Status::Ok();
}

StatusOr<Bytes> NetworkSimulator::CancelFlow(FlowId id) {
  if (!pending_adds_.empty()) {
    FlushBatchAdds();  // The cancelled flow may itself be a deferred add.
  }
  int32_t slot = SlotOf(id);
  if (slot < 0) {
    return NotFoundError("CancelFlow: no such active flow");
  }
  size_t s = static_cast<size_t>(slot);
  Bytes left = soa_.remaining[s] - soa_.current_rate[s] * (now_ - soa_.anchor_time[s]);
  if (left < 0.0) {
    left = 0.0;
  }
  Bytes delivered = soa_.total_bytes[s] - left;
  DetachFlow(slot);
  EraseFlow(slot);
  return delivered;
}

std::optional<FlowView> NetworkSimulator::FindFlow(FlowId id) const {
  int32_t slot = SlotOf(id);
  if (slot < 0) {
    return std::nullopt;
  }
  size_t s = static_cast<size_t>(slot);
  FlowView v;
  v.id = id;
  v.total_bytes = soa_.total_bytes[s];
  v.remaining = soa_.remaining[s];
  v.anchor_time = soa_.anchor_time[s];
  v.pinned_rate = soa_.meta[s].pinned_rate;
  v.current_rate = soa_.current_rate[s];
  v.start_time = soa_.start_time[s];
  v.tag = soa_.tag[s];
  v.tag2 = soa_.tag2[s];
  v.links = soa_.links(slot);
  v.num_links = soa_.num_links(slot);
  return v;
}

Status NetworkSimulator::SetBackgroundRate(LinkId link, Rate rate) {
  if (link < 0 || link >= topo_->num_links()) {
    return InvalidArgumentError("SetBackgroundRate: bad link");
  }
  if (rate < 0.0) {
    return InvalidArgumentError("SetBackgroundRate: negative rate");
  }
  size_t li = static_cast<size_t>(link);
  background_[li] = rate;
  usable_capacity_[li] =
      std::max(0.0, topo_->link(link).capacity * fault_factor_[li] - rate);
  MarkDirty(link);
  return Status::Ok();
}

Rate NetworkSimulator::BackgroundRate(LinkId link) const {
  BDS_CHECK(link >= 0 && link < topo_->num_links());
  return background_[static_cast<size_t>(link)];
}

Status NetworkSimulator::SetLinkFaultFactor(LinkId link, double factor) {
  if (link < 0 || link >= topo_->num_links()) {
    return InvalidArgumentError("SetLinkFaultFactor: bad link");
  }
  if (factor < 0.0 || factor > 1.0) {
    return InvalidArgumentError("SetLinkFaultFactor: factor must be in [0, 1]");
  }
  size_t li = static_cast<size_t>(link);
  fault_factor_[li] = factor;
  usable_capacity_[li] =
      std::max(0.0, topo_->link(link).capacity * factor - background_[li]);
  MarkDirty(link);
  return Status::Ok();
}

double NetworkSimulator::LinkFaultFactor(LinkId link) const {
  BDS_CHECK(link >= 0 && link < topo_->num_links());
  return fault_factor_[static_cast<size_t>(link)];
}

std::vector<FlowId> NetworkSimulator::FlowsCrossingLink(LinkId link) const {
  BDS_CHECK(link >= 0 && link < topo_->num_links());
  BDS_CHECK(pending_adds_.empty());  // Batched starts are not indexed yet.
  std::vector<FlowId> out;
  const auto& row = incidence_.at(link);
  out.reserve(row.size());
  for (const LinkFlowEntry& e : row) {
    out.push_back(soa_.meta[static_cast<size_t>(e.slot)].id);
  }
  std::sort(out.begin(), out.end());  // Row order changes with swap-erase.
  return out;
}

double NetworkSimulator::MaxCapacityViolation() const {
  double worst = -kTimeInfinity;
  bool any = false;
  for (LinkId l = 0; l < topo_->num_links(); ++l) {
    size_t i = static_cast<size_t>(l);
    Rate nominal = topo_->link(l).capacity;
    if (nominal <= 0.0) {
      continue;
    }
    any = true;
    Rate usable = std::max(0.0, nominal * fault_factor_[i] - background_[i]);
    worst = std::max(worst, (link_rate_[i] - usable) / nominal);
  }
  // No link with positive capacity means nothing can be violated.
  return any ? worst : 0.0;
}

void NetworkSimulator::IntegrateLink(LinkId link) {
  size_t li = static_cast<size_t>(link);
  if (link_integrated_at_[li] == now_) {
    return;
  }
  link_bytes_[li] += link_rate_[li] * (now_ - link_integrated_at_[li]);
  link_integrated_at_[li] = now_;
}

void NetworkSimulator::DetachFlow(int32_t slot) {
  size_t s = static_cast<size_t>(slot);
  const LinkId* links = soa_.links(slot);
  int32_t n = soa_.num_links(slot);
  Rate rate = soa_.current_rate[s];
  for (int32_t i = 0; i < n; ++i) {
    IntegrateLink(links[i]);
    link_rate_[static_cast<size_t>(links[i])] -= rate;
    MarkDirty(links[i]);
  }
  incidence_.Remove(soa_, slot);
  // Snap drained links to exactly zero so incremental -= drift can't leak
  // into byte integration or MaxCapacityViolation.
  for (int32_t i = 0; i < n; ++i) {
    if (incidence_.at(links[i]).empty()) {
      link_rate_[static_cast<size_t>(links[i])] = 0.0;
    }
  }
}

void NetworkSimulator::EraseFlow(int32_t slot) {
  size_t s = static_cast<size_t>(slot);
  FlowId id = soa_.meta[s].id;
  id_to_slot_[static_cast<size_t>(id - id_base_)] = -1;
  ++dead_ids_;
  int32_t pos = slot_live_pos_[s];
  int32_t last = live_slots_.back();
  live_slots_[static_cast<size_t>(pos)] = last;
  slot_live_pos_[static_cast<size_t>(last)] = pos;
  live_slots_.pop_back();
  slot_live_pos_[s] = -1;
  soa_.Free(slot);
  soa_.MaybeCompactArena();
  MaybeCompactIdMap();
}

void NetworkSimulator::MaybeCompactIdMap() {
  if (dead_ids_ < id_compact_at_) {
    return;
  }
  // Slide the window past the leading tombstone run (ids below every active
  // flow can never be queried again). If the oldest flow is still active the
  // run is empty; back off until enough new tombstones accumulate.
  size_t run = 0;
  while (run < id_to_slot_.size() && id_to_slot_[run] < 0) {
    ++run;
  }
  if (run > 0) {
    id_to_slot_.erase(id_to_slot_.begin(), id_to_slot_.begin() + static_cast<int64_t>(run));
    id_base_ += static_cast<FlowId>(run);
    dead_ids_ -= static_cast<int64_t>(run);
  }
  id_compact_at_ = dead_ids_ + static_cast<int64_t>(id_to_slot_.size()) / 4 + 1024;
}

void NetworkSimulator::ReallocateComponent(LinkId seed) {
  comp_slots_.clear();
  if (!incidence_.GatherFrom(seed, soa_, &comp_slots_)) {
    return;
  }
  const size_t n = comp_slots_.size();
  // Canonical order: AllocateSubset must see the same sequence no matter
  // which seed found the component or how BFS traversed it. The canonical
  // order is ascending flow id, but after ReorderSlotsForLocality slot
  // numbers usually ascend with ids inside a component — so order the 4-byte
  // slots first and only fall back to the 16-byte (id, slot) pair sort when
  // a scan shows slot order disagreeing with id order (slot reuse after
  // churn, or components spanning reorder groups). The fallback depends only
  // on the component's membership, so both lockstep modes take the same
  // branch and the solve sequence stays bit-identical.
  //
  // Ascending-slot ordering itself exploits the reordered layout too: a
  // component's slots occupy a dense window, so a presence-byte scan over
  // [lo, hi] replaces the comparison sort with two linear passes. When the
  // window is sparse (no reorder yet, heavy churn) an O(n log n) sort is
  // cheaper than scanning the window; either branch emits the same ascending
  // sequence, so the choice cannot affect results.
  {
    int32_t lo = comp_slots_[0];
    int32_t hi = lo;
    for (size_t i = 1; i < n; ++i) {
      int32_t s = comp_slots_[i];
      lo = s < lo ? s : lo;
      hi = s > hi ? s : hi;
    }
    const size_t range = static_cast<size_t>(hi - lo) + 1;
    if (range <= 8 * n) {
      slot_present_.assign(range, 0);
      for (size_t i = 0; i < n; ++i) {
        slot_present_[static_cast<size_t>(comp_slots_[i] - lo)] = 1;
      }
      size_t w = 0;
      for (size_t i = 0; i < range; ++i) {
        comp_slots_[w] = lo + static_cast<int32_t>(i);
        w += slot_present_[i];
      }
    } else {
      std::sort(comp_slots_.begin(), comp_slots_.end());
    }
  }
  bool slot_order_is_id_order = true;
  {
    FlowId prev = -1;
    for (size_t i = 0; i < n; ++i) {
      if (i + 8 < n) {
        __builtin_prefetch(&soa_.meta[static_cast<size_t>(comp_slots_[i + 8])]);
      }
      FlowId id = soa_.meta[static_cast<size_t>(comp_slots_[i])].id;
      if (id < prev) {
        slot_order_is_id_order = false;
        break;
      }
      prev = id;
    }
  }
  if (!slot_order_is_id_order) {
    comp_ids_.resize(n);
    for (size_t i = 0; i < n; ++i) {
      comp_ids_[i] = {soa_.meta[static_cast<size_t>(comp_slots_[i])].id, comp_slots_[i]};
    }
    std::sort(comp_ids_.begin(), comp_ids_.end());
    for (size_t i = 0; i < n; ++i) {
      comp_slots_[i] = comp_ids_[i].second;
    }
  }
  // One scattered pass gathers every input the solve and epilogue need; the
  // rest of this function works on the contiguous copies.
  comp_off_.clear();
  comp_links_.clear();
  comp_pinned_.resize(n);
  comp_rate_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    // Each iteration reads ~5 scattered lines of a slot; issue the loads a
    // few flows ahead so the misses overlap (rate_epoch with a write hint —
    // the epilogue bumps it for every changed rate). current_rate/remaining/
    // anchor_time are read later by the epilogue and argmin passes; pulling
    // them here keeps those passes on hot lines without mirror copies.
    if (i + 4 < n) {
      size_t pf = static_cast<size_t>(comp_slots_[i + 4]);
      __builtin_prefetch(&soa_.current_rate[pf]);
      __builtin_prefetch(&soa_.remaining[pf]);
      __builtin_prefetch(&soa_.anchor_time[pf]);
      __builtin_prefetch(&soa_.rate_epoch[pf], 1);
    }
    if (i + 2 < n) {
      const PathRef& pr = soa_.meta[static_cast<size_t>(comp_slots_[i + 2])].path;
      __builtin_prefetch(&soa_.path_links[static_cast<size_t>(pr.begin)]);
    }
    size_t s = static_cast<size_t>(comp_slots_[i]);
    const FlowMeta& m = soa_.meta[s];
    comp_off_.push_back(static_cast<int32_t>(comp_links_.size()));
    const LinkId* links = soa_.path_links.data() + m.path.begin;
    // Paths are a handful of links; a plain loop beats insert's memmove call.
    for (int32_t j = 0; j < m.path.len; ++j) {
      comp_links_.push_back(links[j]);
    }
    comp_pinned_[i] = m.pinned_rate;
  }
  comp_off_.push_back(static_cast<int32_t>(comp_links_.size()));
  allocator_.AllocateSubset(usable_capacity_, n, comp_off_.data(), comp_links_.data(),
                            comp_pinned_.data(), comp_rate_.data());
  ++num_reallocations_;
  ++telem_component_solves_;
  {
    // Same bin math as HistogramRecord for the [0, kCompHistMax) x
    // kCompHistBins layout; n >= 1 so only the upper clamp can hit.
    const double v = static_cast<double>(n);
    int bin = static_cast<int>(v * (kCompHistBins / kCompHistMax));
    bin = bin < kCompHistBins - 1 ? bin : kCompHistBins - 1;
    ++telem_comp_hist_[bin];
    ++telem_comp_count_;
    telem_comp_sum_ += v;
    if (v > telem_comp_max_) {
      telem_comp_max_ = v;
    }
  }
  for (size_t i = 0; i < n; ++i) {
    size_t s = static_cast<size_t>(comp_slots_[i]);
    Rate new_rate = comp_rate_[i];
    Rate old_rate = soa_.current_rate[s];
    if (new_rate == old_rate) {
      continue;  // Bitwise unchanged: anchor, epoch, and heap entry stay valid.
    }
    Bytes left = soa_.remaining[s] - old_rate * (now_ - soa_.anchor_time[s]);
    soa_.remaining[s] = left > 0.0 ? left : 0.0;
    soa_.anchor_time[s] = now_;
    soa_.current_rate[s] = new_rate;
    ++soa_.rate_epoch[s];
    if (rate_observer_) {
      // Band check against the last reported rate: with keep = 1 - rel and
      // rates >= 0, |new - last| > rel * max(new, last) is exactly
      // new*keep > last (rose past the band) or new < last*keep (fell past
      // it). Two multiply-compares — no fabs/max — and both-zero never fires.
      const Rate last = soa_.reported_rate[s];
      if (new_rate * rate_observer_keep_ > last || new_rate < last * rate_observer_keep_) {
        soa_.reported_rate[s] = new_rate;
        if (!rate_observer_(soa_.tag[s], soa_.tag2[s], now_, last, new_rate)) {
          rate_observer_ = nullptr;  // Observer declined further changepoints.
        }
      }
    }
    for (int32_t j = comp_off_[i]; j < comp_off_[i + 1]; ++j) {
      IntegrateLink(comp_links_[static_cast<size_t>(j)]);
      link_rate_[static_cast<size_t>(comp_links_[static_cast<size_t>(j)])] +=
          new_rate - old_rate;
    }
  }
  if (full_realloc_) {
    return;
  }
  // Push heap entries only for the component's earliest projected
  // completion(s). Between solves no member's key changes, and any event that
  // could surface a later member (the argmin completing, a cancel, a repin, a
  // join) dirties the component and re-solves it first — so entries for
  // non-argmin members would be invalidated before ever reaching the heap
  // top. Pushing ~1 entry per solve instead of one per changed rate keeps the
  // heap at ~#components entries rather than #flows x churn.
  // heap_epoch == rate_epoch means the slot's current-epoch entry (same key,
  // pushed by an earlier solve) is still in the heap; pushing again would
  // complete the flow twice in one batch.
  comp_keys_.resize(n);
  SimTime best = kTimeInfinity;
  for (size_t i = 0; i < n; ++i) {
    // Same bits as CompletionKeyAt: the epilogue above already scattered any
    // rate change back, so the slot columns are current (and still hot).
    size_t s = static_cast<size_t>(comp_slots_[i]);
    comp_keys_[i] = comp_rate_[i] > 0.0
                        ? soa_.anchor_time[s] + soa_.remaining[s] / comp_rate_[i]
                        : kTimeInfinity;
    if (comp_keys_[i] < best) {
      best = comp_keys_[i];
    }
  }
  if (best == kTimeInfinity) {
    return;  // No member has a positive rate.
  }
  for (size_t i = 0; i < n; ++i) {
    if (comp_keys_[i] != best) {
      continue;
    }
    int32_t slot = comp_slots_[i];
    size_t s = static_cast<size_t>(slot);
    if (soa_.heap_epoch[s] == soa_.rate_epoch[s]) {
      continue;
    }
    soa_.heap_epoch[s] = soa_.rate_epoch[s];
    heap_.push_back(CompletionEntry{best, soa_.meta[s].id, slot, soa_.rate_epoch[s]});
    std::push_heap(heap_.begin(), heap_.end(), EntryAfter{});
  }
}

void NetworkSimulator::Reallocate() {
  incidence_.BeginEpoch();
  telemetry::TraceInstant("sim.reallocate", "simulator",
                          {{"dirty_links", static_cast<double>(dirty_links_.size())},
                           {"active_flows", static_cast<double>(soa_.num_live())}});
  ++telem_reallocations_;
  telem_dirty_links_ += static_cast<int64_t>(dirty_links_.size());
  if (full_realloc_) {
    // Reference mode: re-solve every component regardless of dirtiness.
    for (LinkId l = 0; l < topo_->num_links(); ++l) {
      ReallocateComponent(l);
    }
  } else {
    std::sort(dirty_links_.begin(), dirty_links_.end());
    for (LinkId l : dirty_links_) {
      ReallocateComponent(l);
    }
  }
  for (LinkId l : dirty_links_) {
    link_dirty_[static_cast<size_t>(l)] = 0;
  }
  dirty_links_.clear();
  rates_dirty_ = false;
  if (!full_realloc_ && heap_.size() > 1024 &&
      heap_.size() > 8 * (static_cast<size_t>(soa_.num_live()) + 1)) {
    CompactHeap();
  }
  SampleTrackedLinks();
}

void NetworkSimulator::CompactHeap() {
  size_t w = 0;
  for (const CompletionEntry& e : heap_) {
    if (!ValidEntry(e)) {
      continue;
    }
    heap_[w++] = e;
  }
  heap_.resize(w);
  std::make_heap(heap_.begin(), heap_.end(), EntryAfter{});
}

SimTime NetworkSimulator::NextCompletionTime() {
  if (full_realloc_) {
    SimTime best = kTimeInfinity;
    for (int32_t slot : live_slots_) {
      SimTime k = CompletionKeyAt(slot);
      if (k < best) {
        best = k;
      }
    }
    return best;
  }
  while (!heap_.empty()) {
    const CompletionEntry& e = heap_.front();
    if (ValidEntry(e)) {
      return e.key;  // Valid top; leave it for CompleteBatch.
    }
    std::pop_heap(heap_.begin(), heap_.end(), EntryAfter{});
    heap_.pop_back();
  }
  return kTimeInfinity;
}

void NetworkSimulator::CompleteBatch(SimTime t) {
  batch_.clear();
  if (full_realloc_) {
    for (int32_t slot : live_slots_) {
      if (CompletionKeyAt(slot) == t) {
        batch_.emplace_back(soa_.meta[static_cast<size_t>(slot)].id, slot);
      }
    }
  } else {
    // Every flow completing at t is its component's argmin, so its last
    // component solve pushed exactly one current-epoch entry for it; popping
    // the key == t prefix (skipping stale entries) yields exactly the batch.
    while (!heap_.empty() && heap_.front().key <= t) {
      CompletionEntry e = heap_.front();
      std::pop_heap(heap_.begin(), heap_.end(), EntryAfter{});
      heap_.pop_back();
      if (!ValidEntry(e)) {
        continue;
      }
      BDS_CHECK(e.key == t);  // A live completion earlier than now_ is a bug.
      batch_.emplace_back(e.id, e.slot);
    }
  }
  std::sort(batch_.begin(), batch_.end());  // Ids are unique: sorts by id.
  BDS_CHECK(!batch_.empty());

  size_t first_record = completed_.size();
  for (const auto& [id, slot] : batch_) {
    size_t s = static_cast<size_t>(slot);
    soa_.remaining[s] = 0.0;
    soa_.anchor_time[s] = t;
    completed_.push_back(
        FlowRecord{id, soa_.total_bytes[s], soa_.start_time[s], t, soa_.tag[s], soa_.tag2[s]});
    DetachFlow(slot);
    EraseFlow(slot);
  }
  ++num_events_;
  ++telem_events_;
  telem_flows_completed_ += static_cast<int64_t>(batch_.size());
  telemetry::TraceInstant("sim.complete_batch", "simulator",
                          {{"flows", static_cast<double>(batch_.size())},
                           {"sim_time", t}});

  // Callbacks fire after the whole batch is detached, so callback-started
  // flows can never share an allocation round with the finished batch.
  if (on_complete_) {
    size_t last_record = completed_.size();
    for (size_t i = first_record; i < last_record; ++i) {
      FlowRecord r = completed_[i];  // Copy: callbacks may grow completed_.
      on_complete_(r);
    }
  }

  // Bounded history for long-running service mode: drop the oldest records
  // once the cap is exceeded (amortized — only when the overshoot is large
  // enough to be worth the memmove).
  if (completed_history_limit_ >= 0 &&
      static_cast<int64_t>(completed_.size()) >
          completed_history_limit_ + completed_history_limit_ / 2 + 64) {
    const int64_t drop = static_cast<int64_t>(completed_.size()) - completed_history_limit_;
    completed_.erase(completed_.begin(), completed_.begin() + drop);
    dropped_flow_records_ += drop;
  }
}

Status NetworkSimulator::AdvanceTo(SimTime t) {
  if (t < now_ - kFluidEpsilon) {
    return InvalidArgumentError("AdvanceTo: time went backwards");
  }
  if (t < now_) {
    t = now_;  // Within the fluid tolerance: clamp instead of stepping back.
  }
  CommitBatch();  // Advancing time ends any open churn batch.
  // Completion callbacks may start new flows, so the loop is bounded by a
  // generous safeguard rather than the initial flow count.
  constexpr int64_t kMaxEvents = 100'000'000;
  for (int64_t iter = 0; iter < kMaxEvents; ++iter) {
    if (rates_dirty_) {
      Reallocate();
    }
    SimTime next = NextCompletionTime();
    if (next > t) {
      now_ = t;
      PublishTelemetry();
      return Status::Ok();
    }
    now_ = next;
    CompleteBatch(next);  // Includes flows landing exactly at t.
  }
  return InternalError("AdvanceTo: event cascade did not terminate");
}

StatusOr<SimTime> NetworkSimulator::RunUntilIdle(SimTime deadline) {
  CommitBatch();
  while (soa_.num_live() > 0) {
    if (rates_dirty_) {
      Reallocate();
    }
    SimTime next = NextCompletionTime();
    if (!std::isfinite(next)) {
      return InternalError("RunUntilIdle: active flows but no progress (all rates zero)");
    }
    if (next > deadline) {
      BDS_RETURN_IF_ERROR(AdvanceTo(deadline));
      SampleTrackedLinks();  // Series must end at the actual end time.
      return now_;
    }
    now_ = next;
    CompleteBatch(next);
  }
  SampleTrackedLinks();  // Series must end at the actual end time.
  PublishTelemetry();
  return now_;
}

// Folds the hot-loop accumulators into the metrics registry. The per-event
// cost model (DESIGN.md §11) wants plain increments inside the drain loop;
// the registry's shard stores happen here, once per drive call.
void NetworkSimulator::PublishTelemetry() {
  BDS_TELEMETRY_COUNT("sim.flows_started", telem_flows_started_);
  BDS_TELEMETRY_COUNT("sim.flows_completed", telem_flows_completed_);
  BDS_TELEMETRY_COUNT("sim.events", telem_events_);
  BDS_TELEMETRY_COUNT("sim.component_solves", telem_component_solves_);
  BDS_TELEMETRY_COUNT("sim.reallocations", telem_reallocations_);
  BDS_TELEMETRY_COUNT("sim.dirty_links", telem_dirty_links_);
  if (telem_comp_count_ > 0) {
    BDS_TELEMETRY_HISTOGRAM_BULK("sim.component_flows", 0.0, kCompHistMax, kCompHistBins,
                                 telem_comp_hist_, telem_comp_count_, telem_comp_sum_,
                                 telem_comp_max_);
    std::fill(std::begin(telem_comp_hist_), std::end(telem_comp_hist_), int64_t{0});
    telem_comp_count_ = 0;
    telem_comp_sum_ = 0.0;
    telem_comp_max_ = 0.0;
  }
  telem_flows_started_ = 0;
  telem_flows_completed_ = 0;
  telem_events_ = 0;
  telem_component_solves_ = 0;
  telem_reallocations_ = 0;
  telem_dirty_links_ = 0;
}

Bytes NetworkSimulator::LinkBytesTransferred(LinkId link) const {
  BDS_CHECK(link >= 0 && link < topo_->num_links());
  size_t li = static_cast<size_t>(link);
  // link_bytes_ is integrated up to link_integrated_at_; extend to now_.
  return link_bytes_[li] + link_rate_[li] * (now_ - link_integrated_at_[li]);
}

Rate NetworkSimulator::LinkBulkRate(LinkId link) const {
  BDS_CHECK(link >= 0 && link < topo_->num_links());
  return link_rate_[static_cast<size_t>(link)];
}

double NetworkSimulator::LinkUtilization(LinkId link) const {
  const Link& l = topo_->link(link);
  if (l.capacity <= 0.0) {
    return 0.0;
  }
  return (LinkBulkRate(link) + background_[static_cast<size_t>(link)]) / l.capacity;
}

void NetworkSimulator::TrackLinkUtilization(LinkId link) {
  BDS_CHECK(link >= 0 && link < topo_->num_links());
  auto it = std::lower_bound(tracked_.begin(), tracked_.end(), link,
                             [](const auto& entry, LinkId l) { return entry.first < l; });
  if (it != tracked_.end() && it->first == link) {
    return;  // Already tracked.
  }
  tracked_.emplace(it, link, TimeSeries("link" + std::to_string(link)));
}

const TimeSeries* NetworkSimulator::LinkUtilizationSeries(LinkId link) const {
  auto it = std::lower_bound(tracked_.begin(), tracked_.end(), link,
                             [](const auto& entry, LinkId l) { return entry.first < l; });
  return it == tracked_.end() || it->first != link ? nullptr : &it->second;
}

void NetworkSimulator::SampleTrackedLinks() {
  for (auto& [link, series] : tracked_) {
    series.Add(now_, LinkUtilization(link));
  }
}

}  // namespace bds
