#include "src/simulator/latency_model.h"

#include "src/common/status.h"

namespace bds {

LatencyModel::LatencyModel(const Topology* topo) : LatencyModel(topo, Options()) {}

LatencyModel::LatencyModel(const Topology* topo, Options options)
    : topo_(topo), options_(options), rng_(options.seed) {
  BDS_CHECK(topo != nullptr);
}

double LatencyModel::SampleOneWay(DcId a, DcId b) {
  double base = (a == b) ? 0.0 : topo_->DcLatency(a, b);
  // Median multiplier 1.0: lognormal with mu = 0.
  double jitter = rng_.LogNormal(0.0, options_.jitter_sigma);
  return base * jitter + options_.processing_overhead;
}

double LatencyModel::SampleRtt(DcId a, DcId b) { return SampleOneWay(a, b) + SampleOneWay(b, a); }

}  // namespace bds
