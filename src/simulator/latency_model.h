// Control-plane message latency.
//
// Figure 11b of the paper measured 5000 controller<->agent requests: 90 % of
// one-way delays below 50 ms, mean about 25 ms. We model the one-way delay
// between two DCs as the topology's base latency plus lognormal jitter, which
// reproduces that heavy-ish right tail.

#ifndef BDS_SRC_SIMULATOR_LATENCY_MODEL_H_
#define BDS_SRC_SIMULATOR_LATENCY_MODEL_H_

#include "src/common/rng.h"
#include "src/common/types.h"
#include "src/topology/topology.h"

namespace bds {

class LatencyModel {
 public:
  struct Options {
    // Multiplicative lognormal jitter: exp(N(mu, sigma)). mu is chosen so the
    // median multiplier is ~1.
    double jitter_sigma = 0.35;
    // Additive processing overhead per message (serialization, HTTP POST).
    double processing_overhead = 0.002;  // 2 ms
    uint64_t seed = 7;
  };

  explicit LatencyModel(const Topology* topo);
  LatencyModel(const Topology* topo, Options options);

  // One-way delay for a message between DCs `a` and `b` (seconds). Delays
  // within the same DC are just the processing overhead plus small jitter.
  double SampleOneWay(DcId a, DcId b);

  // Round trip: two independent one-way samples.
  double SampleRtt(DcId a, DcId b);

 private:
  const Topology* topo_;
  Options options_;
  Rng rng_;
};

}  // namespace bds

#endif  // BDS_SRC_SIMULATOR_LATENCY_MODEL_H_
