// A flow is the simulator's unit of data movement: a fixed byte count moving
// along a fixed sequence of capacity-constrained links.
//
// Two rate regimes exist, matching the systems being modelled:
//  * pinned  — BDS's controller assigns an explicit rate (the deployment
//              enforces it with `wget --limit-rate` / tc); the flow never
//              exceeds it, and is scaled down only if links are oversubscribed.
//  * fair    — decentralized baselines let TCP find the rate; modelled as
//              max-min fair sharing of residual link capacity.
//
// NetworkSimulator does not store Flow objects: active flows live in a
// struct-of-arrays pool (FlowSoA) and are observed through FlowView. The
// Flow struct remains the allocator's standalone input type (reference
// solver, property tests).

#ifndef BDS_SRC_SIMULATOR_FLOW_H_
#define BDS_SRC_SIMULATOR_FLOW_H_

#include <cstdint>
#include <vector>

#include "src/common/types.h"

namespace bds {

struct Flow {
  FlowId id = kInvalidFlow;
  std::vector<LinkId> links;

  Bytes total_bytes = 0.0;
  // Bytes left to transfer *as of anchor_time*. Progress is lazy: between
  // rate changes the pair (anchor_time, remaining) plus current_rate fully
  // describe the flow, so untouched flows cost nothing per event. Use
  // RemainingAt(now) for the instantaneous value.
  Bytes remaining = 0.0;
  SimTime anchor_time = 0.0;

  // 0 means "fair share"; > 0 means pinned to at most this rate.
  Rate pinned_rate = 0.0;
  // Set by the bandwidth allocator at every reallocation; valid since
  // anchor_time.
  Rate current_rate = 0.0;

  SimTime start_time = 0.0;
  SimTime end_time = -1.0;  // < 0 while in flight.

  // Opaque cookies for the client (e.g. block id / job id); the simulator
  // never interprets them.
  int64_t tag = 0;
  int64_t tag2 = 0;

  bool pinned() const { return pinned_rate > 0.0; }
  bool completed() const { return end_time >= 0.0; }

  Bytes RemainingAt(SimTime t) const {
    Bytes left = remaining - current_rate * (t - anchor_time);
    return left > 0.0 ? left : 0.0;
  }
};

// Read-only snapshot of an in-flight flow in the simulator's SoA pool,
// returned by NetworkSimulator::FindFlow. `links` points into the pool's
// shared path arena and is invalidated by the next flow start/cancel/
// completion — consume it before mutating the simulator.
struct FlowView {
  FlowId id = kInvalidFlow;
  Bytes total_bytes = 0.0;
  Bytes remaining = 0.0;  // As of anchor_time; use RemainingAt(now).
  SimTime anchor_time = 0.0;
  Rate pinned_rate = 0.0;
  Rate current_rate = 0.0;
  SimTime start_time = 0.0;
  int64_t tag = 0;
  int64_t tag2 = 0;
  const LinkId* links = nullptr;
  int32_t num_links = 0;

  bool pinned() const { return pinned_rate > 0.0; }

  bool Crosses(LinkId link) const {
    for (int32_t i = 0; i < num_links; ++i) {
      if (links[i] == link) {
        return true;
      }
    }
    return false;
  }

  Bytes RemainingAt(SimTime t) const {
    Bytes left = remaining - current_rate * (t - anchor_time);
    return left > 0.0 ? left : 0.0;
  }
};

// Immutable record of a finished flow, kept for reporting.
struct FlowRecord {
  FlowId id = kInvalidFlow;
  Bytes bytes = 0.0;
  SimTime start_time = 0.0;
  SimTime end_time = 0.0;
  int64_t tag = 0;
  int64_t tag2 = 0;

  SimTime Duration() const { return end_time - start_time; }
};

}  // namespace bds

#endif  // BDS_SRC_SIMULATOR_FLOW_H_
