// A flow is the simulator's unit of data movement: a fixed byte count moving
// along a fixed sequence of capacity-constrained links.
//
// Two rate regimes exist, matching the systems being modelled:
//  * pinned  — BDS's controller assigns an explicit rate (the deployment
//              enforces it with `wget --limit-rate` / tc); the flow never
//              exceeds it, and is scaled down only if links are oversubscribed.
//  * fair    — decentralized baselines let TCP find the rate; modelled as
//              max-min fair sharing of residual link capacity.

#ifndef BDS_SRC_SIMULATOR_FLOW_H_
#define BDS_SRC_SIMULATOR_FLOW_H_

#include <cstdint>
#include <vector>

#include "src/common/types.h"

namespace bds {

struct Flow {
  FlowId id = kInvalidFlow;
  std::vector<LinkId> links;

  Bytes total_bytes = 0.0;
  // Bytes left to transfer *as of anchor_time*. Progress is lazy: between
  // rate changes the pair (anchor_time, remaining) plus current_rate fully
  // describe the flow, so untouched flows cost nothing per event. Use
  // RemainingAt(now) for the instantaneous value.
  Bytes remaining = 0.0;
  SimTime anchor_time = 0.0;

  // 0 means "fair share"; > 0 means pinned to at most this rate.
  Rate pinned_rate = 0.0;
  // Set by the bandwidth allocator at every reallocation; valid since
  // anchor_time.
  Rate current_rate = 0.0;

  SimTime start_time = 0.0;
  SimTime end_time = -1.0;  // < 0 while in flight.

  // Opaque cookies for the client (e.g. block id / job id); the simulator
  // never interprets them.
  int64_t tag = 0;
  int64_t tag2 = 0;

  // --- Hot-path bookkeeping owned by NetworkSimulator / LinkFlowIndex. ---
  // Bumped whenever current_rate changes; completion-heap entries carrying an
  // older epoch are stale and lazily discarded.
  uint32_t rate_epoch = 0;
  // Visit marker for component gathering (LinkFlowIndex generation counter).
  uint64_t visit_stamp = 0;
  // incidence_pos[i] is this flow's position in the per-link entry list of
  // links[i], kept in sync by LinkFlowIndex's swap-erase.
  std::vector<int32_t> incidence_pos;

  bool pinned() const { return pinned_rate > 0.0; }
  bool completed() const { return end_time >= 0.0; }

  Bytes RemainingAt(SimTime t) const {
    Bytes left = remaining - current_rate * (t - anchor_time);
    return left > 0.0 ? left : 0.0;
  }
};

// Immutable record of a finished flow, kept for reporting.
struct FlowRecord {
  FlowId id = kInvalidFlow;
  Bytes bytes = 0.0;
  SimTime start_time = 0.0;
  SimTime end_time = 0.0;
  int64_t tag = 0;
  int64_t tag2 = 0;

  SimTime Duration() const { return end_time - start_time; }
};

}  // namespace bds

#endif  // BDS_SRC_SIMULATOR_FLOW_H_
