// Computes per-flow rates given link capacities.
//
// Algorithm (progressive filling):
//  1. Pinned flows request their pinned rate. If any link is oversubscribed
//     by pinned flows alone, all pinned flows crossing it are scaled down
//     proportionally (iterated to a fixed point) — this models rate limits
//     that were set slightly stale against shrinking residual capacity.
//  2. Unpinned flows share the remaining capacity max-min fairly: all active
//     flows grow at the same rate until a link saturates; flows through
//     saturated links freeze; repeat.
//
// The canonical entry points are component-scoped. Rates under progressive
// filling decompose by connected components of the flow-link incidence
// graph, so `Allocate` partitions the flow set into components and solves
// each with `AllocateSubset` (flows ordered by id). The hot-path overload of
// `AllocateSubset` operates directly on the simulator's FlowSoA pool — the
// waterfill reads/writes parallel slot arrays and scans paths out of the
// shared CSR arena, so the inner loops touch contiguous memory only. The
// Flow*-based overloads are thin shims that round-trip through a scratch
// FlowSoA, so the randomized property suite that checks `Allocate` against
// `AllocateReference` (the original whole-network solver, rates agree to
// floating-point reassociation noise, ~1e-12 relative) exercises the exact
// SoA code path the simulator runs.
//
// Scratch state is generation-stamped per link (including the flat
// link->member-flow adjacency arena used by the component partition), so a
// solve costs O(component links + flows), not O(topology links), with no
// per-call clears or allocations at steady state.

#ifndef BDS_SRC_SIMULATOR_BANDWIDTH_ALLOCATOR_H_
#define BDS_SRC_SIMULATOR_BANDWIDTH_ALLOCATOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/types.h"
#include "src/simulator/flow.h"
#include "src/simulator/flow_soa.h"

namespace bds {

class BandwidthAllocator {
 public:
  // `capacities[l]` is the residual capacity of link l (already net of
  // background traffic). Writes Flow::current_rate for every flow in
  // `flows`. Completed flows get rate 0. Component-decomposed: equivalent to
  // calling AllocateSubset on every link-connected component.
  void Allocate(const std::vector<Rate>& capacities, std::vector<Flow*>& flows);

  // Solves one flow pool as a single progressive-filling instance, touching
  // only the links the pool crosses. Callers pass one link-connected
  // component, sorted by flow id, for canonical (reproducible) results.
  void AllocateSubset(const std::vector<Rate>& capacities,
                      const std::vector<Flow*>& flows);

  // Solves the `n` in-flight flows in `slots` (one link-connected component,
  // sorted by flow id) on the SoA pool, writing soa.current_rate. Every slot
  // must be live and un-completed — the simulator's pool only holds in-flight
  // flows. Gathers into contiguous scratch and defers to the flat overload.
  void AllocateSubset(const std::vector<Rate>& capacities, FlowSoA& soa,
                      const int32_t* slots, size_t n);

  // Hot-path core: the same progressive filling on caller-gathered flat
  // arrays. Flow fi's path is links[offsets[fi]..offsets[fi+1]); pinned[fi]
  // is its pinned rate (0 = fair share); rate[fi] receives the result. The
  // component's slots are scattered across the pool, so solving on a
  // component-local contiguous copy keeps every waterfill pass inside a few
  // cache lines instead of re-missing per slot per round.
  void AllocateSubset(const std::vector<Rate>& capacities, size_t n,
                      const int32_t* offsets, const LinkId* links, const Rate* pinned,
                      Rate* rate);

  // The original whole-network solver (single global filling pass over all
  // links), retained as the semantic reference for the parity suite.
  void AllocateReference(const std::vector<Rate>& capacities, std::vector<Flow*>& flows);

 private:
  void EnsureScratch(size_t num_links);

  // Generation-stamped per-link scratch (valid when link_gen_[l] == gen_).
  uint64_t gen_ = 0;
  std::vector<uint64_t> link_gen_;
  std::vector<Rate> residual_;
  std::vector<Rate> load_;
  std::vector<int> active_count_;
  std::vector<char> link_saturated_;
  std::vector<size_t> used_links_;

  // Per-call flow scratch (indices into the flat arrays being solved).
  std::vector<int32_t> pinned_;
  std::vector<int32_t> fair_;
  std::vector<char> frozen_;

  // Gather scratch backing the slot-based AllocateSubset overload.
  std::vector<int32_t> sub_off_;
  std::vector<LinkId> sub_links_;
  std::vector<Rate> sub_pinned_;
  std::vector<Rate> sub_rate_;

  // Component-partition scratch for Allocate(): a flat CSR arena mapping
  // link -> member-flow indices, rebuilt per call via generation stamps
  // (member_stamp_) with two counting passes — no per-link vectors, no
  // per-call clears.
  uint64_t member_gen_ = 0;
  std::vector<uint64_t> member_stamp_;
  std::vector<size_t> member_links_;   // Links used this epoch.
  std::vector<int32_t> member_begin_;  // Row offset into member_arena_.
  std::vector<int32_t> member_fill_;   // Next write position per row.
  std::vector<int32_t> member_arena_;  // Flow indices, grouped by link.
  std::vector<char> visited_;
  std::vector<size_t> comp_queue_;
  std::vector<Flow*> comp_flows_;

  // Scratch pool backing the Flow*-based AllocateSubset shim.
  FlowSoA scratch_;
  std::vector<int32_t> scratch_slots_;
  std::vector<Flow*> scratch_flows_;
};

}  // namespace bds

#endif  // BDS_SRC_SIMULATOR_BANDWIDTH_ALLOCATOR_H_
