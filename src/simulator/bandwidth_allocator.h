// Computes per-flow rates given link capacities.
//
// Algorithm (progressive filling):
//  1. Pinned flows request their pinned rate. If any link is oversubscribed
//     by pinned flows alone, all pinned flows crossing it are scaled down
//     proportionally (iterated to a fixed point) — this models rate limits
//     that were set slightly stale against shrinking residual capacity.
//  2. Unpinned flows share the remaining capacity max-min fairly: all active
//     flows grow at the same rate until a link saturates; flows through
//     saturated links freeze; repeat.
//
// The canonical entry points are component-scoped. Rates under progressive
// filling decompose by connected components of the flow-link incidence
// graph, so `Allocate` partitions the flow set into components and solves
// each with `AllocateSubset` (flows ordered by id). `AllocateSubset` is what
// the simulator's incremental reallocation calls directly for a single dirty
// component; because it is a pure function of (sorted component flows, link
// capacities), recomputing an untouched component reproduces bit-identical
// rates — the invariant the incremental path relies on. The original
// whole-network solver is retained as `AllocateReference` and checked
// against `Allocate` by a randomized property suite (rates agree to
// floating-point reassociation noise, ~1e-12 relative).
//
// Scratch state is generation-stamped per link, so a subset solve costs
// O(component links + flows), not O(topology links).

#ifndef BDS_SRC_SIMULATOR_BANDWIDTH_ALLOCATOR_H_
#define BDS_SRC_SIMULATOR_BANDWIDTH_ALLOCATOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/types.h"
#include "src/simulator/flow.h"

namespace bds {

class BandwidthAllocator {
 public:
  // `capacities[l]` is the residual capacity of link l (already net of
  // background traffic). Writes Flow::current_rate for every flow in
  // `flows`. Completed flows get rate 0. Component-decomposed: equivalent to
  // calling AllocateSubset on every link-connected component.
  void Allocate(const std::vector<Rate>& capacities, std::vector<Flow*>& flows);

  // Solves one flow pool as a single progressive-filling instance, touching
  // only the links the pool crosses. Callers pass one link-connected
  // component, sorted by flow id, for canonical (reproducible) results.
  void AllocateSubset(const std::vector<Rate>& capacities,
                      const std::vector<Flow*>& flows);

  // The original whole-network solver (single global filling pass over all
  // links), retained as the semantic reference for the parity suite.
  void AllocateReference(const std::vector<Rate>& capacities, std::vector<Flow*>& flows);

 private:
  void EnsureScratch(size_t num_links);

  // Generation-stamped per-link scratch (valid when link_gen_[l] == gen_).
  uint64_t gen_ = 0;
  std::vector<uint64_t> link_gen_;
  std::vector<Rate> residual_;
  std::vector<Rate> load_;
  std::vector<int> active_count_;
  std::vector<char> link_saturated_;
  std::vector<size_t> used_links_;

  // Per-call flow scratch.
  std::vector<Flow*> pinned_;
  std::vector<Flow*> fair_;
  std::vector<char> frozen_;

  // Component-partition scratch for Allocate().
  uint64_t member_gen_ = 0;
  std::vector<uint64_t> member_stamp_;
  std::vector<std::vector<size_t>> link_members_;
  std::vector<char> visited_;
  std::vector<size_t> comp_queue_;
  std::vector<Flow*> comp_flows_;
};

}  // namespace bds

#endif  // BDS_SRC_SIMULATOR_BANDWIDTH_ALLOCATOR_H_
