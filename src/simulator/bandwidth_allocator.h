// Computes per-flow rates given link capacities.
//
// Algorithm (progressive filling):
//  1. Pinned flows request their pinned rate. If any link is oversubscribed
//     by pinned flows alone, all pinned flows crossing it are scaled down
//     proportionally (iterated to a fixed point) — this models rate limits
//     that were set slightly stale against shrinking residual capacity.
//  2. Unpinned flows share the remaining capacity max-min fairly: all active
//     flows grow at the same rate until a link saturates; flows through
//     saturated links freeze; repeat.

#ifndef BDS_SRC_SIMULATOR_BANDWIDTH_ALLOCATOR_H_
#define BDS_SRC_SIMULATOR_BANDWIDTH_ALLOCATOR_H_

#include <cstddef>
#include <vector>

#include "src/common/types.h"
#include "src/simulator/flow.h"

namespace bds {

class BandwidthAllocator {
 public:
  // `capacities[l]` is the residual capacity of link l (already net of
  // background traffic). Writes Flow::current_rate for every flow in
  // `flows`. Completed flows get rate 0.
  void Allocate(const std::vector<Rate>& capacities, std::vector<Flow*>& flows);

 private:
  // Scratch vectors reused across calls to avoid per-cycle allocation churn.
  std::vector<Rate> residual_;
  std::vector<int> active_count_;
  std::vector<char> link_saturated_;
  std::vector<size_t> used_links_;
};

}  // namespace bds

#endif  // BDS_SRC_SIMULATOR_BANDWIDTH_ALLOCATOR_H_
