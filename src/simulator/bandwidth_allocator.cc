#include "src/simulator/bandwidth_allocator.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/status.h"

namespace bds {

void BandwidthAllocator::Allocate(const std::vector<Rate>& capacities,
                                  std::vector<Flow*>& flows) {
  size_t num_links = capacities.size();
  residual_.assign(num_links, 0.0);
  for (size_t l = 0; l < num_links; ++l) {
    residual_[l] = std::max(0.0, capacities[l]);
  }

  // --- Phase 1: pinned flows. ---
  // Start each at its pinned rate, then repeatedly scale down the flows
  // crossing the most oversubscribed link until everything fits.
  std::vector<Flow*> pinned;
  std::vector<Flow*> fair;
  for (Flow* f : flows) {
    if (f->completed()) {
      f->current_rate = 0.0;
      continue;
    }
    if (f->pinned()) {
      f->current_rate = f->pinned_rate;
      pinned.push_back(f);
    } else {
      f->current_rate = 0.0;
      fair.push_back(f);
    }
  }

  if (!pinned.empty()) {
    // Fixed-point: find the worst oversubscription factor and shrink the
    // flows on that link. Each iteration permanently satisfies one link, so
    // this terminates in at most num_links rounds.
    std::vector<Rate> load(num_links, 0.0);
    for (int round = 0; round < static_cast<int>(num_links) + 1; ++round) {
      std::fill(load.begin(), load.end(), 0.0);
      for (Flow* f : pinned) {
        for (LinkId l : f->links) {
          load[static_cast<size_t>(l)] += f->current_rate;
        }
      }
      double worst_factor = 1.0;
      size_t worst_link = num_links;
      for (size_t l = 0; l < num_links; ++l) {
        if (load[l] > residual_[l] * (1.0 + kFluidEpsilon) && load[l] > 0.0) {
          double factor = residual_[l] / load[l];
          if (factor < worst_factor) {
            worst_factor = factor;
            worst_link = l;
          }
        }
      }
      if (worst_link == num_links) {
        break;  // Feasible.
      }
      for (Flow* f : pinned) {
        for (LinkId l : f->links) {
          if (static_cast<size_t>(l) == worst_link) {
            f->current_rate *= worst_factor;
            break;
          }
        }
      }
    }
    // Subtract the pinned load from the residual available to fair flows.
    for (Flow* f : pinned) {
      for (LinkId l : f->links) {
        residual_[static_cast<size_t>(l)] =
            std::max(0.0, residual_[static_cast<size_t>(l)] - f->current_rate);
      }
    }
  }

  // --- Phase 2: max-min fair filling for unpinned flows. ---
  // All loops run over the links that actually carry a fair flow, not the
  // whole topology — the allocator is on the simulator's per-event hot path.
  if (fair.empty()) {
    return;
  }
  active_count_.assign(num_links, 0);
  link_saturated_.assign(num_links, 0);
  std::vector<char> frozen(fair.size(), 0);
  used_links_.clear();
  for (Flow* f : fair) {
    for (LinkId l : f->links) {
      if (active_count_[static_cast<size_t>(l)]++ == 0) {
        used_links_.push_back(static_cast<size_t>(l));
      }
    }
  }

  size_t remaining_flows = fair.size();
  // Each round saturates at least one used link (or freezes all flows).
  for (size_t round = 0; round < used_links_.size() + 1 && remaining_flows > 0; ++round) {
    // Largest uniform increment every active flow can take.
    double inc = std::numeric_limits<double>::infinity();
    for (size_t l : used_links_) {
      if (active_count_[l] > 0 && !link_saturated_[l]) {
        inc = std::min(inc, residual_[l] / active_count_[l]);
      }
    }
    if (!std::isfinite(inc)) {
      break;  // No capacity constraint binds (shouldn't happen in practice).
    }
    for (size_t i = 0; i < fair.size(); ++i) {
      if (!frozen[i]) {
        fair[i]->current_rate += inc;
      }
    }
    for (size_t l : used_links_) {
      if (active_count_[l] > 0 && !link_saturated_[l]) {
        residual_[l] -= inc * active_count_[l];
        if (residual_[l] <= kFluidEpsilon * std::max(1.0, capacities[l])) {
          link_saturated_[l] = 1;
        }
      }
    }
    // Freeze flows crossing newly saturated links.
    for (size_t i = 0; i < fair.size(); ++i) {
      if (frozen[i]) {
        continue;
      }
      bool hit = false;
      for (LinkId l : fair[i]->links) {
        if (link_saturated_[static_cast<size_t>(l)]) {
          hit = true;
          break;
        }
      }
      if (hit) {
        frozen[i] = 1;
        --remaining_flows;
        for (LinkId l : fair[i]->links) {
          --active_count_[static_cast<size_t>(l)];
        }
      }
    }
  }
}

}  // namespace bds
