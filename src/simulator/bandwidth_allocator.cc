#include "src/simulator/bandwidth_allocator.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/status.h"

namespace bds {

void BandwidthAllocator::EnsureScratch(size_t num_links) {
  if (link_gen_.size() < num_links) {
    link_gen_.resize(num_links, 0);
    residual_.resize(num_links, 0.0);
    load_.resize(num_links, 0.0);
    active_count_.resize(num_links, 0);
    link_saturated_.resize(num_links, 0);
    member_stamp_.resize(num_links, 0);
    member_begin_.resize(num_links, 0);
    member_fill_.resize(num_links, 0);
  }
}

void BandwidthAllocator::AllocateSubset(const std::vector<Rate>& capacities, FlowSoA& soa,
                                        const int32_t* slots, size_t n) {
  sub_off_.clear();
  sub_links_.clear();
  sub_pinned_.resize(n);
  sub_rate_.resize(n);
  for (size_t fi = 0; fi < n; ++fi) {
    int32_t slot = slots[fi];
    const FlowMeta& m = soa.meta[static_cast<size_t>(slot)];
    sub_off_.push_back(static_cast<int32_t>(sub_links_.size()));
    const LinkId* links = soa.path_links.data() + m.path.begin;
    for (int32_t i = 0; i < m.path.len; ++i) {
      sub_links_.push_back(links[i]);
    }
    sub_pinned_[fi] = m.pinned_rate;
  }
  sub_off_.push_back(static_cast<int32_t>(sub_links_.size()));
  AllocateSubset(capacities, n, sub_off_.data(), sub_links_.data(), sub_pinned_.data(),
                 sub_rate_.data());
  for (size_t fi = 0; fi < n; ++fi) {
    soa.current_rate[static_cast<size_t>(slots[fi])] = sub_rate_[fi];
  }
}

void BandwidthAllocator::AllocateSubset(const std::vector<Rate>& capacities, size_t n,
                                        const int32_t* offsets, const LinkId* links,
                                        const Rate* pinned, Rate* rate) {
  EnsureScratch(capacities.size());
  ++gen_;
  used_links_.clear();
  pinned_.clear();
  fair_.clear();

  auto touch = [&](size_t l) {
    if (link_gen_[l] != gen_) {
      link_gen_[l] = gen_;
      residual_[l] = std::max(0.0, capacities[l]);
      active_count_[l] = 0;
      link_saturated_[l] = 0;
      used_links_.push_back(l);
    }
  };
  for (size_t fi = 0; fi < n; ++fi) {
    if (pinned[fi] > 0.0) {
      for (int32_t i = offsets[fi]; i < offsets[fi + 1]; ++i) {
        touch(static_cast<size_t>(links[i]));
      }
      rate[fi] = pinned[fi];
      pinned_.push_back(static_cast<int32_t>(fi));
    } else {
      // Fair flows count toward phase 2's per-link active totals; folding the
      // increment into the touch pass saves a second walk over every path.
      for (int32_t i = offsets[fi]; i < offsets[fi + 1]; ++i) {
        size_t l = static_cast<size_t>(links[i]);
        touch(l);
        ++active_count_[l];
      }
      rate[fi] = 0.0;
      fair_.push_back(static_cast<int32_t>(fi));
    }
  }
  // Ascending link order so the phase-1 worst-link tie break matches the
  // reference solver's 0..num_links scan.
  std::sort(used_links_.begin(), used_links_.end());

  // --- Phase 1: pinned flows. ---
  // Start each at its pinned rate, then repeatedly scale down the flows
  // crossing the most oversubscribed link until everything fits. Each
  // iteration permanently satisfies one link, so this terminates in at most
  // used_links rounds.
  if (!pinned_.empty()) {
    for (size_t round = 0; round < used_links_.size() + 1; ++round) {
      for (size_t l : used_links_) {
        load_[l] = 0.0;
      }
      for (int32_t fi : pinned_) {
        for (int32_t i = offsets[fi]; i < offsets[fi + 1]; ++i) {
          load_[static_cast<size_t>(links[i])] += rate[fi];
        }
      }
      double worst_factor = 1.0;
      size_t worst_link = capacities.size();
      for (size_t l : used_links_) {
        if (load_[l] > residual_[l] * (1.0 + kFluidEpsilon) && load_[l] > 0.0) {
          double factor = residual_[l] / load_[l];
          if (factor < worst_factor) {
            worst_factor = factor;
            worst_link = l;
          }
        }
      }
      if (worst_link == capacities.size()) {
        break;  // Feasible.
      }
      for (int32_t fi : pinned_) {
        for (int32_t i = offsets[fi]; i < offsets[fi + 1]; ++i) {
          if (static_cast<size_t>(links[i]) == worst_link) {
            rate[fi] *= worst_factor;
            break;
          }
        }
      }
    }
    // Subtract the pinned load from the residual available to fair flows.
    for (int32_t fi : pinned_) {
      for (int32_t i = offsets[fi]; i < offsets[fi + 1]; ++i) {
        size_t l = static_cast<size_t>(links[i]);
        residual_[l] = std::max(0.0, residual_[l] - rate[fi]);
      }
    }
  }

  // --- Phase 2: max-min fair filling for unpinned flows. ---
  if (fair_.empty()) {
    return;
  }
  frozen_.assign(fair_.size(), 0);
  size_t remaining_flows = fair_.size();
  // Each round saturates at least one used link (or freezes all flows).
  for (size_t round = 0; round < used_links_.size() + 1 && remaining_flows > 0; ++round) {
    // Largest uniform increment every active flow can take.
    double inc = std::numeric_limits<double>::infinity();
    for (size_t l : used_links_) {
      if (active_count_[l] > 0 && !link_saturated_[l]) {
        inc = std::min(inc, residual_[l] / active_count_[l]);
      }
    }
    if (!std::isfinite(inc)) {
      break;  // No capacity constraint binds (shouldn't happen in practice).
    }
    for (size_t i = 0; i < fair_.size(); ++i) {
      if (!frozen_[i]) {
        rate[fair_[i]] += inc;
      }
    }
    for (size_t l : used_links_) {
      if (active_count_[l] > 0 && !link_saturated_[l]) {
        residual_[l] -= inc * active_count_[l];
        if (residual_[l] <= kFluidEpsilon * std::max(1.0, capacities[l])) {
          link_saturated_[l] = 1;
        }
      }
    }
    // Freeze flows crossing newly saturated links.
    for (size_t i = 0; i < fair_.size(); ++i) {
      if (frozen_[i]) {
        continue;
      }
      int32_t fi = fair_[i];
      bool hit = false;
      for (int32_t j = offsets[fi]; j < offsets[fi + 1]; ++j) {
        if (link_saturated_[static_cast<size_t>(links[j])]) {
          hit = true;
          break;
        }
      }
      if (hit) {
        frozen_[i] = 1;
        --remaining_flows;
        for (int32_t j = offsets[fi]; j < offsets[fi + 1]; ++j) {
          --active_count_[static_cast<size_t>(links[j])];
        }
      }
    }
  }
}

void BandwidthAllocator::AllocateSubset(const std::vector<Rate>& capacities,
                                        const std::vector<Flow*>& flows) {
  // Shim: round-trip through a scratch SoA so tests exercise the exact
  // slot-array code path the simulator runs. Completed flows never touch
  // links or join a phase, so filtering them here is arithmetic-identical to
  // skipping them inline.
  scratch_.Clear();
  scratch_slots_.clear();
  scratch_flows_.clear();
  for (Flow* f : flows) {
    if (f->completed()) {
      f->current_rate = 0.0;
      continue;
    }
    int32_t slot = scratch_.Allocate(f->id, f->links.data(),
                                     static_cast<int32_t>(f->links.size()));
    scratch_.meta[static_cast<size_t>(slot)].pinned_rate = f->pinned_rate;
    scratch_slots_.push_back(slot);
    scratch_flows_.push_back(f);
  }
  AllocateSubset(capacities, scratch_, scratch_slots_.data(), scratch_slots_.size());
  for (size_t i = 0; i < scratch_flows_.size(); ++i) {
    scratch_flows_[i]->current_rate =
        scratch_.current_rate[static_cast<size_t>(scratch_slots_[i])];
  }
}

void BandwidthAllocator::Allocate(const std::vector<Rate>& capacities,
                                  std::vector<Flow*>& flows) {
  EnsureScratch(capacities.size());

  // Build link -> member-flow adjacency for the live flows as a flat CSR
  // arena: one counting pass, a prefix sum over the links actually used this
  // epoch, one fill pass. Stamped rows, so the cost is O(flows * path), not
  // O(topology links).
  ++member_gen_;
  member_links_.clear();
  for (Flow* f : flows) {
    if (f->completed()) {
      f->current_rate = 0.0;
      continue;
    }
    for (LinkId l : f->links) {
      size_t li = static_cast<size_t>(l);
      if (member_stamp_[li] != member_gen_) {
        member_stamp_[li] = member_gen_;
        member_begin_[li] = 0;  // Reused as a count until the prefix sum.
        member_links_.push_back(li);
      }
      ++member_begin_[li];
    }
  }
  int32_t offset = 0;
  for (size_t li : member_links_) {
    int32_t count = member_begin_[li];
    member_begin_[li] = offset;
    member_fill_[li] = offset;
    offset += count;
  }
  member_arena_.resize(static_cast<size_t>(offset));
  for (size_t i = 0; i < flows.size(); ++i) {
    Flow* f = flows[i];
    if (f->completed()) {
      continue;
    }
    for (LinkId l : f->links) {
      member_arena_[static_cast<size_t>(member_fill_[static_cast<size_t>(l)]++)] =
          static_cast<int32_t>(i);
    }
  }

  // BFS each link-connected component and solve it in isolation, flows
  // ordered by id — the same canonical subsets the simulator's incremental
  // path recomputes one at a time.
  visited_.assign(flows.size(), 0);
  for (size_t i = 0; i < flows.size(); ++i) {
    if (visited_[i] || flows[i]->completed()) {
      continue;
    }
    comp_queue_.clear();
    comp_queue_.push_back(i);
    visited_[i] = 1;
    for (size_t head = 0; head < comp_queue_.size(); ++head) {
      Flow* f = flows[comp_queue_[head]];
      for (LinkId l : f->links) {
        size_t li = static_cast<size_t>(l);
        int32_t row_end = member_fill_[li];
        for (int32_t p = member_begin_[li]; p < row_end; ++p) {
          size_t j = static_cast<size_t>(member_arena_[static_cast<size_t>(p)]);
          if (!visited_[j]) {
            visited_[j] = 1;
            comp_queue_.push_back(j);
          }
        }
      }
    }
    comp_flows_.clear();
    for (size_t j : comp_queue_) {
      comp_flows_.push_back(flows[j]);
    }
    std::sort(comp_flows_.begin(), comp_flows_.end(),
              [](const Flow* a, const Flow* b) { return a->id < b->id; });
    AllocateSubset(capacities, comp_flows_);
  }
}

void BandwidthAllocator::AllocateReference(const std::vector<Rate>& capacities,
                                           std::vector<Flow*>& flows) {
  size_t num_links = capacities.size();
  std::vector<Rate> residual(num_links, 0.0);
  for (size_t l = 0; l < num_links; ++l) {
    residual[l] = std::max(0.0, capacities[l]);
  }

  // --- Phase 1: pinned flows. ---
  // Start each at its pinned rate, then repeatedly scale down the flows
  // crossing the most oversubscribed link until everything fits.
  std::vector<Flow*> pinned;
  std::vector<Flow*> fair;
  for (Flow* f : flows) {
    if (f->completed()) {
      f->current_rate = 0.0;
      continue;
    }
    if (f->pinned()) {
      f->current_rate = f->pinned_rate;
      pinned.push_back(f);
    } else {
      f->current_rate = 0.0;
      fair.push_back(f);
    }
  }

  if (!pinned.empty()) {
    // Fixed-point: find the worst oversubscription factor and shrink the
    // flows on that link. Each iteration permanently satisfies one link, so
    // this terminates in at most num_links rounds.
    std::vector<Rate> load(num_links, 0.0);
    for (int round = 0; round < static_cast<int>(num_links) + 1; ++round) {
      std::fill(load.begin(), load.end(), 0.0);
      for (Flow* f : pinned) {
        for (LinkId l : f->links) {
          load[static_cast<size_t>(l)] += f->current_rate;
        }
      }
      double worst_factor = 1.0;
      size_t worst_link = num_links;
      for (size_t l = 0; l < num_links; ++l) {
        if (load[l] > residual[l] * (1.0 + kFluidEpsilon) && load[l] > 0.0) {
          double factor = residual[l] / load[l];
          if (factor < worst_factor) {
            worst_factor = factor;
            worst_link = l;
          }
        }
      }
      if (worst_link == num_links) {
        break;  // Feasible.
      }
      for (Flow* f : pinned) {
        for (LinkId l : f->links) {
          if (static_cast<size_t>(l) == worst_link) {
            f->current_rate *= worst_factor;
            break;
          }
        }
      }
    }
    // Subtract the pinned load from the residual available to fair flows.
    for (Flow* f : pinned) {
      for (LinkId l : f->links) {
        residual[static_cast<size_t>(l)] =
            std::max(0.0, residual[static_cast<size_t>(l)] - f->current_rate);
      }
    }
  }

  // --- Phase 2: max-min fair filling for unpinned flows. ---
  if (fair.empty()) {
    return;
  }
  std::vector<int> active_count(num_links, 0);
  std::vector<char> link_saturated(num_links, 0);
  std::vector<char> frozen(fair.size(), 0);
  std::vector<size_t> used_links;
  for (Flow* f : fair) {
    for (LinkId l : f->links) {
      if (active_count[static_cast<size_t>(l)]++ == 0) {
        used_links.push_back(static_cast<size_t>(l));
      }
    }
  }

  size_t remaining_flows = fair.size();
  // Each round saturates at least one used link (or freezes all flows).
  for (size_t round = 0; round < used_links.size() + 1 && remaining_flows > 0; ++round) {
    // Largest uniform increment every active flow can take.
    double inc = std::numeric_limits<double>::infinity();
    for (size_t l : used_links) {
      if (active_count[l] > 0 && !link_saturated[l]) {
        inc = std::min(inc, residual[l] / active_count[l]);
      }
    }
    if (!std::isfinite(inc)) {
      break;  // No capacity constraint binds (shouldn't happen in practice).
    }
    for (size_t i = 0; i < fair.size(); ++i) {
      if (!frozen[i]) {
        fair[i]->current_rate += inc;
      }
    }
    for (size_t l : used_links) {
      if (active_count[l] > 0 && !link_saturated[l]) {
        residual[l] -= inc * active_count[l];
        if (residual[l] <= kFluidEpsilon * std::max(1.0, capacities[l])) {
          link_saturated[l] = 1;
        }
      }
    }
    // Freeze flows crossing newly saturated links.
    for (size_t i = 0; i < fair.size(); ++i) {
      if (frozen[i]) {
        continue;
      }
      bool hit = false;
      for (LinkId l : fair[i]->links) {
        if (link_saturated[static_cast<size_t>(l)]) {
          hit = true;
          break;
        }
      }
      if (hit) {
        frozen[i] = 1;
        --remaining_flows;
        for (LinkId l : fair[i]->links) {
          --active_count[static_cast<size_t>(l)];
        }
      }
    }
  }
}

}  // namespace bds
