#include "src/simulator/bandwidth_allocator.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/status.h"

namespace bds {

void BandwidthAllocator::EnsureScratch(size_t num_links) {
  if (link_gen_.size() < num_links) {
    link_gen_.resize(num_links, 0);
    residual_.resize(num_links, 0.0);
    load_.resize(num_links, 0.0);
    active_count_.resize(num_links, 0);
    link_saturated_.resize(num_links, 0);
    member_stamp_.resize(num_links, 0);
    link_members_.resize(num_links);
  }
}

void BandwidthAllocator::AllocateSubset(const std::vector<Rate>& capacities,
                                        const std::vector<Flow*>& flows) {
  EnsureScratch(capacities.size());
  ++gen_;
  used_links_.clear();
  pinned_.clear();
  fair_.clear();

  auto touch = [&](size_t l) {
    if (link_gen_[l] != gen_) {
      link_gen_[l] = gen_;
      residual_[l] = std::max(0.0, capacities[l]);
      active_count_[l] = 0;
      link_saturated_[l] = 0;
      used_links_.push_back(l);
    }
  };
  for (Flow* f : flows) {
    if (f->completed()) {
      f->current_rate = 0.0;
      continue;
    }
    for (LinkId l : f->links) {
      touch(static_cast<size_t>(l));
    }
    if (f->pinned()) {
      f->current_rate = f->pinned_rate;
      pinned_.push_back(f);
    } else {
      f->current_rate = 0.0;
      fair_.push_back(f);
    }
  }
  // Ascending link order so the phase-1 worst-link tie break matches the
  // reference solver's 0..num_links scan.
  std::sort(used_links_.begin(), used_links_.end());

  // --- Phase 1: pinned flows. ---
  // Start each at its pinned rate, then repeatedly scale down the flows
  // crossing the most oversubscribed link until everything fits. Each
  // iteration permanently satisfies one link, so this terminates in at most
  // used_links rounds.
  if (!pinned_.empty()) {
    for (size_t round = 0; round < used_links_.size() + 1; ++round) {
      for (size_t l : used_links_) {
        load_[l] = 0.0;
      }
      for (Flow* f : pinned_) {
        for (LinkId l : f->links) {
          load_[static_cast<size_t>(l)] += f->current_rate;
        }
      }
      double worst_factor = 1.0;
      size_t worst_link = capacities.size();
      for (size_t l : used_links_) {
        if (load_[l] > residual_[l] * (1.0 + kFluidEpsilon) && load_[l] > 0.0) {
          double factor = residual_[l] / load_[l];
          if (factor < worst_factor) {
            worst_factor = factor;
            worst_link = l;
          }
        }
      }
      if (worst_link == capacities.size()) {
        break;  // Feasible.
      }
      for (Flow* f : pinned_) {
        for (LinkId l : f->links) {
          if (static_cast<size_t>(l) == worst_link) {
            f->current_rate *= worst_factor;
            break;
          }
        }
      }
    }
    // Subtract the pinned load from the residual available to fair flows.
    for (Flow* f : pinned_) {
      for (LinkId l : f->links) {
        residual_[static_cast<size_t>(l)] =
            std::max(0.0, residual_[static_cast<size_t>(l)] - f->current_rate);
      }
    }
  }

  // --- Phase 2: max-min fair filling for unpinned flows. ---
  if (fair_.empty()) {
    return;
  }
  frozen_.assign(fair_.size(), 0);
  for (Flow* f : fair_) {
    for (LinkId l : f->links) {
      ++active_count_[static_cast<size_t>(l)];
    }
  }

  size_t remaining_flows = fair_.size();
  // Each round saturates at least one used link (or freezes all flows).
  for (size_t round = 0; round < used_links_.size() + 1 && remaining_flows > 0; ++round) {
    // Largest uniform increment every active flow can take.
    double inc = std::numeric_limits<double>::infinity();
    for (size_t l : used_links_) {
      if (active_count_[l] > 0 && !link_saturated_[l]) {
        inc = std::min(inc, residual_[l] / active_count_[l]);
      }
    }
    if (!std::isfinite(inc)) {
      break;  // No capacity constraint binds (shouldn't happen in practice).
    }
    for (size_t i = 0; i < fair_.size(); ++i) {
      if (!frozen_[i]) {
        fair_[i]->current_rate += inc;
      }
    }
    for (size_t l : used_links_) {
      if (active_count_[l] > 0 && !link_saturated_[l]) {
        residual_[l] -= inc * active_count_[l];
        if (residual_[l] <= kFluidEpsilon * std::max(1.0, capacities[l])) {
          link_saturated_[l] = 1;
        }
      }
    }
    // Freeze flows crossing newly saturated links.
    for (size_t i = 0; i < fair_.size(); ++i) {
      if (frozen_[i]) {
        continue;
      }
      bool hit = false;
      for (LinkId l : fair_[i]->links) {
        if (link_saturated_[static_cast<size_t>(l)]) {
          hit = true;
          break;
        }
      }
      if (hit) {
        frozen_[i] = 1;
        --remaining_flows;
        for (LinkId l : fair_[i]->links) {
          --active_count_[static_cast<size_t>(l)];
        }
      }
    }
  }
}

void BandwidthAllocator::Allocate(const std::vector<Rate>& capacities,
                                  std::vector<Flow*>& flows) {
  EnsureScratch(capacities.size());

  // Build link -> member-flow adjacency for the live flows (stamped rows, so
  // the cost is O(flows * path), not O(topology links)).
  ++member_gen_;
  for (size_t i = 0; i < flows.size(); ++i) {
    Flow* f = flows[i];
    if (f->completed()) {
      f->current_rate = 0.0;
      continue;
    }
    for (LinkId l : f->links) {
      size_t li = static_cast<size_t>(l);
      if (member_stamp_[li] != member_gen_) {
        member_stamp_[li] = member_gen_;
        link_members_[li].clear();
      }
      link_members_[li].push_back(i);
    }
  }

  // BFS each link-connected component and solve it in isolation, flows
  // ordered by id — the same canonical subsets the simulator's incremental
  // path recomputes one at a time.
  visited_.assign(flows.size(), 0);
  for (size_t i = 0; i < flows.size(); ++i) {
    if (visited_[i] || flows[i]->completed()) {
      continue;
    }
    comp_queue_.clear();
    comp_queue_.push_back(i);
    visited_[i] = 1;
    for (size_t head = 0; head < comp_queue_.size(); ++head) {
      Flow* f = flows[comp_queue_[head]];
      for (LinkId l : f->links) {
        for (size_t j : link_members_[static_cast<size_t>(l)]) {
          if (!visited_[j]) {
            visited_[j] = 1;
            comp_queue_.push_back(j);
          }
        }
      }
    }
    comp_flows_.clear();
    for (size_t j : comp_queue_) {
      comp_flows_.push_back(flows[j]);
    }
    std::sort(comp_flows_.begin(), comp_flows_.end(),
              [](const Flow* a, const Flow* b) { return a->id < b->id; });
    AllocateSubset(capacities, comp_flows_);
  }
}

void BandwidthAllocator::AllocateReference(const std::vector<Rate>& capacities,
                                           std::vector<Flow*>& flows) {
  size_t num_links = capacities.size();
  std::vector<Rate> residual(num_links, 0.0);
  for (size_t l = 0; l < num_links; ++l) {
    residual[l] = std::max(0.0, capacities[l]);
  }

  // --- Phase 1: pinned flows. ---
  // Start each at its pinned rate, then repeatedly scale down the flows
  // crossing the most oversubscribed link until everything fits.
  std::vector<Flow*> pinned;
  std::vector<Flow*> fair;
  for (Flow* f : flows) {
    if (f->completed()) {
      f->current_rate = 0.0;
      continue;
    }
    if (f->pinned()) {
      f->current_rate = f->pinned_rate;
      pinned.push_back(f);
    } else {
      f->current_rate = 0.0;
      fair.push_back(f);
    }
  }

  if (!pinned.empty()) {
    // Fixed-point: find the worst oversubscription factor and shrink the
    // flows on that link. Each iteration permanently satisfies one link, so
    // this terminates in at most num_links rounds.
    std::vector<Rate> load(num_links, 0.0);
    for (int round = 0; round < static_cast<int>(num_links) + 1; ++round) {
      std::fill(load.begin(), load.end(), 0.0);
      for (Flow* f : pinned) {
        for (LinkId l : f->links) {
          load[static_cast<size_t>(l)] += f->current_rate;
        }
      }
      double worst_factor = 1.0;
      size_t worst_link = num_links;
      for (size_t l = 0; l < num_links; ++l) {
        if (load[l] > residual[l] * (1.0 + kFluidEpsilon) && load[l] > 0.0) {
          double factor = residual[l] / load[l];
          if (factor < worst_factor) {
            worst_factor = factor;
            worst_link = l;
          }
        }
      }
      if (worst_link == num_links) {
        break;  // Feasible.
      }
      for (Flow* f : pinned) {
        for (LinkId l : f->links) {
          if (static_cast<size_t>(l) == worst_link) {
            f->current_rate *= worst_factor;
            break;
          }
        }
      }
    }
    // Subtract the pinned load from the residual available to fair flows.
    for (Flow* f : pinned) {
      for (LinkId l : f->links) {
        residual[static_cast<size_t>(l)] =
            std::max(0.0, residual[static_cast<size_t>(l)] - f->current_rate);
      }
    }
  }

  // --- Phase 2: max-min fair filling for unpinned flows. ---
  if (fair.empty()) {
    return;
  }
  std::vector<int> active_count(num_links, 0);
  std::vector<char> link_saturated(num_links, 0);
  std::vector<char> frozen(fair.size(), 0);
  std::vector<size_t> used_links;
  for (Flow* f : fair) {
    for (LinkId l : f->links) {
      if (active_count[static_cast<size_t>(l)]++ == 0) {
        used_links.push_back(static_cast<size_t>(l));
      }
    }
  }

  size_t remaining_flows = fair.size();
  // Each round saturates at least one used link (or freezes all flows).
  for (size_t round = 0; round < used_links.size() + 1 && remaining_flows > 0; ++round) {
    // Largest uniform increment every active flow can take.
    double inc = std::numeric_limits<double>::infinity();
    for (size_t l : used_links) {
      if (active_count[l] > 0 && !link_saturated[l]) {
        inc = std::min(inc, residual[l] / active_count[l]);
      }
    }
    if (!std::isfinite(inc)) {
      break;  // No capacity constraint binds (shouldn't happen in practice).
    }
    for (size_t i = 0; i < fair.size(); ++i) {
      if (!frozen[i]) {
        fair[i]->current_rate += inc;
      }
    }
    for (size_t l : used_links) {
      if (active_count[l] > 0 && !link_saturated[l]) {
        residual[l] -= inc * active_count[l];
        if (residual[l] <= kFluidEpsilon * std::max(1.0, capacities[l])) {
          link_saturated[l] = 1;
        }
      }
    }
    // Freeze flows crossing newly saturated links.
    for (size_t i = 0; i < fair.size(); ++i) {
      if (frozen[i]) {
        continue;
      }
      bool hit = false;
      for (LinkId l : fair[i]->links) {
        if (link_saturated[static_cast<size_t>(l)]) {
          hit = true;
          break;
        }
      }
      if (hit) {
        frozen[i] = 1;
        --remaining_flows;
        for (LinkId l : fair[i]->links) {
          --active_count[static_cast<size_t>(l)];
        }
      }
    }
  }
}

}  // namespace bds
