// Fluid flow-level discrete-event network simulator.
//
// Time advances from one flow-completion event to the next; between events
// every flow transfers bytes at the rate the BandwidthAllocator assigned.
// Clients start flows (pinned or fair-share), advance virtual time, and get
// completion callbacks. Background (latency-sensitive) traffic is modelled
// as a per-link rate that shrinks the capacity available to bulk flows —
// exactly how BDS's NetworkMonitor sees it (§5.2).
//
// Hot-path complexity (see DESIGN.md "Simulator performance"): each event
// costs O(affected component + log F), not O(F), for F active flows:
//   * a link->flow incidence index (LinkFlowIndex) finds the flows a change
//     touches without scanning the active set;
//   * reallocation is incremental — only the link-connected component(s) of
//     the incidence graph marked dirty since the last event are re-solved;
//     untouched flows keep their rates, anchors, and projected completions;
//   * per-flow progress is lazy: (anchor_time, remaining, current_rate)
//     describe a flow between rate changes, so advancing time is O(1) per
//     untouched flow (Flow::RemainingAt materializes on demand);
//   * the next completion comes from a min-heap of projected completion
//     times with lazy invalidation keyed on Flow::rate_epoch; completions
//     sharing one event time are batched into a single reallocation;
//   * per-link byte counters integrate rate * dt lazily at rate-change
//     boundaries instead of per flow per event.
// set_full_reallocation(true) re-solves every component at every event and
// scans instead of using the heap — the reference path the parity suite
// (tests/simulator_incremental_parity_test.cc) checks bit-identical results
// against, and the "reference" config of bench/bench_sim_hotpath.cc.

#ifndef BDS_SRC_SIMULATOR_NETWORK_SIMULATOR_H_
#define BDS_SRC_SIMULATOR_NETWORK_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/common/stats.h"
#include "src/common/types.h"
#include "src/simulator/bandwidth_allocator.h"
#include "src/simulator/flow.h"
#include "src/simulator/link_flow_index.h"
#include "src/topology/topology.h"

namespace bds {

class NetworkSimulator {
 public:
  explicit NetworkSimulator(const Topology* topo);

  // --- Flow management. ---

  // Starts a flow over `links` carrying `bytes`. pinned_rate == 0 means
  // fair-share. The path must not repeat a link. Returns the flow id.
  StatusOr<FlowId> StartFlow(std::vector<LinkId> links, Bytes bytes, Rate pinned_rate = 0.0,
                             int64_t tag = 0, int64_t tag2 = 0);

  // Changes the pinned rate of an in-flight flow (0 switches to fair-share).
  Status RepinFlow(FlowId id, Rate pinned_rate);

  // Cancels an in-flight flow; transferred bytes stay transferred but no
  // completion fires. Returns bytes that had been delivered.
  StatusOr<Bytes> CancelFlow(FlowId id);

  // nullptr when the flow completed or never existed. Flow::remaining is as
  // of Flow::anchor_time — use Flow::RemainingAt(now()) for live progress.
  const Flow* FindFlow(FlowId id) const;

  int num_active_flows() const { return static_cast<int>(active_.size()); }

  // --- Link faults (injected churn). ---

  // Sets the usable-capacity factor of `link`: 0 = hard down, 1 = healthy,
  // in between = degradation. Effective capacity is nominal * factor;
  // in-flight flows are throttled (or starved to rate 0) at the next
  // reallocation — callers decide whether to kill them.
  Status SetLinkFaultFactor(LinkId link, double factor);
  double LinkFaultFactor(LinkId link) const;
  const std::vector<double>& link_fault_factors() const { return fault_factor_; }

  // Active flows whose path crosses `link` (for kill-on-hard-down).
  std::vector<FlowId> FlowsCrossingLink(LinkId link) const;

  // Max over links of bulk_rate - usable_bulk_capacity, normalized by the
  // link's nominal capacity; <= ~0 whenever the allocator respects every
  // (possibly faulted) link. Uses the rates of the last reallocation.
  // 0.0 (no violation) when no link has positive nominal capacity.
  double MaxCapacityViolation() const;

  // --- Background (latency-sensitive) traffic. ---

  // Sets the instantaneous rate consumed by latency-sensitive traffic on a
  // link; the allocator only hands out capacity - background to bulk flows.
  Status SetBackgroundRate(LinkId link, Rate rate);
  Rate BackgroundRate(LinkId link) const;

  // --- Time. ---

  SimTime now() const { return now_; }

  // Advances virtual time to `t`, firing completion callbacks in order.
  Status AdvanceTo(SimTime t);
  Status AdvanceBy(SimTime dt) { return AdvanceTo(now_ + dt); }

  // Advances until no active flows remain or `deadline` is hit; returns the
  // final time.
  StatusOr<SimTime> RunUntilIdle(SimTime deadline = kTimeInfinity);

  // --- Observation. ---

  using CompletionCallback = std::function<void(const FlowRecord&)>;
  void SetCompletionCallback(CompletionCallback cb) { on_complete_ = std::move(cb); }

  const std::vector<FlowRecord>& completed_flows() const { return completed_; }

  // Caps the completed-flow history kept in completed_flows() so a
  // long-running service stays O(live work): once the vector exceeds the
  // limit (plus amortization slack) the oldest records are dropped and
  // counted in dropped_flow_records(). -1 (the default) keeps everything.
  void set_completed_history_limit(int64_t limit) { completed_history_limit_ = limit; }
  int64_t dropped_flow_records() const { return dropped_flow_records_; }

  // Total bulk bytes that have crossed `link` so far.
  Bytes LinkBytesTransferred(LinkId link) const;

  // Instantaneous bulk utilization (allocated rate / capacity) of `link`.
  double LinkUtilization(LinkId link) const;

  // Current total bulk rate crossing `link`.
  Rate LinkBulkRate(LinkId link) const;

  // Enables a per-link utilization time series (sampled at every event).
  void TrackLinkUtilization(LinkId link);
  const TimeSeries* LinkUtilizationSeries(LinkId link) const;

  const Topology& topology() const { return *topo_; }

  // --- Hot-path instrumentation / reference mode. ---

  // Full-reallocation reference mode: every event re-solves every component
  // and the next completion is found by scanning, exactly reproducing what
  // the incremental path must compute. Must be set before any flow starts.
  void set_full_reallocation(bool on);
  bool full_reallocation() const { return full_realloc_; }

  int64_t num_reallocations() const { return num_reallocations_; }
  int64_t num_completion_events() const { return num_events_; }

 private:
  struct CompletionEntry {
    SimTime key = 0.0;  // Projected completion time when pushed.
    FlowId id = kInvalidFlow;
    uint32_t epoch = 0;  // Flow::rate_epoch at push; stale when it moved on.
  };
  struct EntryAfter {
    // Min-heap comparator; (key, id, epoch) is a strict total order, so pop
    // order is independent of insertion order.
    bool operator()(const CompletionEntry& a, const CompletionEntry& b) const {
      if (a.key != b.key) return a.key > b.key;
      if (a.id != b.id) return a.id > b.id;
      return a.epoch > b.epoch;
    }
  };

  // Projected completion time of `f` (zero-crossing of remaining bytes);
  // pure function of the flow's anchor state, so heap entries and scans
  // compute identical bits.
  static SimTime CompletionKey(const Flow& f) {
    return f.current_rate > 0.0 ? f.anchor_time + f.remaining / f.current_rate
                                : kTimeInfinity;
  }

  void MarkDirty(LinkId link);
  // Re-solves dirty components (all components in full mode), updating
  // anchors, epochs, per-link rates, and the completion heap for every flow
  // whose rate actually changed.
  void Reallocate();
  void ReallocateComponent(LinkId seed);
  // Earliest projected completion among active flows; kTimeInfinity if none.
  SimTime NextCompletionTime();
  // Completes every flow whose projected completion equals `t` (now_ == t),
  // fires callbacks after the batch is detached.
  void CompleteBatch(SimTime t);
  // Folds rate * dt into link_bytes_ up to now_ (call before changing the
  // link's aggregate rate).
  void IntegrateLink(LinkId link);
  // Drops stale heap entries and re-heapifies (bounds heap growth under
  // long-running churn).
  void CompactHeap();
  // Integrates + removes the flow's rate from its links, marks them dirty,
  // and drops the flow from the incidence index.
  void DetachFlow(Flow* f);
  void EraseFromActive(size_t pos);
  void SampleTrackedLinks();

  const Topology* topo_;
  BandwidthAllocator allocator_;
  LinkFlowIndex incidence_;
  bool full_realloc_ = false;

  SimTime now_ = 0.0;
  FlowId next_flow_id_ = 0;

  std::vector<std::unique_ptr<Flow>> active_;
  std::unordered_map<FlowId, size_t> index_;  // id -> position in active_.
  std::vector<Rate> background_;              // Per link.
  std::vector<double> fault_factor_;          // Per link, 1 = healthy.
  std::vector<Rate> usable_capacity_;         // max(0, nominal*fault - background).
  std::vector<Rate> link_rate_;               // Aggregate bulk rate per link.
  std::vector<SimTime> link_integrated_at_;   // link_bytes_ valid up to here.
  std::vector<Bytes> link_bytes_;             // Per link, cumulative.
  bool rates_dirty_ = true;

  std::vector<LinkId> dirty_links_;
  std::vector<char> link_dirty_;

  std::vector<CompletionEntry> heap_;  // Min-heap via std::push/pop_heap.

  // Reallocation / completion scratch.
  std::vector<Flow*> comp_flows_;
  std::vector<Rate> old_rates_;
  std::vector<FlowId> batch_ids_;

  int64_t num_reallocations_ = 0;
  int64_t num_events_ = 0;

  CompletionCallback on_complete_;
  std::vector<FlowRecord> completed_;
  int64_t completed_history_limit_ = -1;
  int64_t dropped_flow_records_ = 0;
  std::unordered_map<LinkId, TimeSeries> tracked_;
};

}  // namespace bds

#endif  // BDS_SRC_SIMULATOR_NETWORK_SIMULATOR_H_
