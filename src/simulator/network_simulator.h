// Fluid flow-level discrete-event network simulator.
//
// Time advances from one flow-completion event to the next; between events
// every flow transfers bytes at the rate the BandwidthAllocator assigned.
// Clients start flows (pinned or fair-share), advance virtual time, and get
// completion callbacks. Background (latency-sensitive) traffic is modelled
// as a per-link rate that shrinks the capacity available to bulk flows —
// exactly how BDS's NetworkMonitor sees it (§5.2).
//
// Hot-path complexity (see DESIGN.md "Simulator performance"): each event
// costs O(affected component + log F), not O(F), for F active flows:
//   * active flows live in a struct-of-arrays pool (FlowSoA): hot scalars
//     are parallel slot-indexed arrays and paths live in a shared CSR arena,
//     so the waterfill and component gather scan contiguous memory;
//   * flow ids map to slots through a dense sliding window (ids are
//     sequential), not a hash map — completion-heap validation and FindFlow
//     are array lookups;
//   * a link->flow incidence index (LinkFlowIndex) finds the flows a change
//     touches without scanning the active set;
//   * reallocation is incremental — only the link-connected component(s) of
//     the incidence graph marked dirty since the last event are re-solved;
//     untouched flows keep their rates, anchors, and projected completions;
//   * per-flow progress is lazy: (anchor_time, remaining, current_rate)
//     describe a flow between rate changes, so advancing time is O(1) per
//     untouched flow;
//   * the next completion comes from a min-heap of projected completion
//     times with lazy invalidation keyed on the slot's rate_epoch (monotonic
//     across slot reuse); completions sharing one event time are batched
//     into a single reallocation;
//   * per-link byte counters integrate rate * dt lazily at rate-change
//     boundaries instead of per flow per event;
//   * BeginBatch/CommitBatch lets a controller cycle submit its churn as one
//     transaction: flow starts defer incidence insertion and dirty marking
//     until commit (identical insertion order, so results are bit-identical
//     to per-flow submission), and the next time advance runs one
//     reallocation pass over the union of dirty components.
// set_full_reallocation(true) re-solves every component at every event and
// scans instead of using the heap — the reference path the parity suite
// (tests/simulator_incremental_parity_test.cc) checks bit-identical results
// against, and the "reference" config of bench/bench_sim_hotpath.cc.

#ifndef BDS_SRC_SIMULATOR_NETWORK_SIMULATOR_H_
#define BDS_SRC_SIMULATOR_NETWORK_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/common/stats.h"
#include "src/common/types.h"
#include "src/simulator/bandwidth_allocator.h"
#include "src/simulator/flow.h"
#include "src/simulator/flow_soa.h"
#include "src/simulator/link_flow_index.h"
#include "src/topology/topology.h"

namespace bds {

class NetworkSimulator {
 public:
  explicit NetworkSimulator(const Topology* topo);

  // --- Flow management. ---

  // Starts a flow over `links` carrying `bytes`. pinned_rate == 0 means
  // fair-share. The path must not repeat a link. Returns the flow id.
  StatusOr<FlowId> StartFlow(std::vector<LinkId> links, Bytes bytes, Rate pinned_rate = 0.0,
                             int64_t tag = 0, int64_t tag2 = 0);

  // Changes the pinned rate of an in-flight flow (0 switches to fair-share).
  Status RepinFlow(FlowId id, Rate pinned_rate);

  // Cancels an in-flight flow; transferred bytes stay transferred but no
  // completion fires. Returns bytes that had been delivered.
  StatusOr<Bytes> CancelFlow(FlowId id);

  // nullopt when the flow completed or never existed. FlowView::remaining is
  // as of anchor_time — use FlowView::RemainingAt(now()) for live progress.
  // The view's `links` pointer is invalidated by the next churn.
  std::optional<FlowView> FindFlow(FlowId id) const;

  int num_active_flows() const { return soa_.num_live(); }

  // --- Batched churn. ---

  // Opens a churn batch: until CommitBatch, StartFlow defers incidence
  // insertion and dirty marking (flows are still visible to FindFlow and
  // counted active). CancelFlow/RepinFlow inside a batch first flush the
  // deferred starts, preserving the exact per-flow submission order, so a
  // batched cycle is bit-identical to unbatched submission. Advancing time
  // commits the open batch automatically.
  void BeginBatch();
  void CommitBatch();
  bool in_batch() const { return in_batch_; }

  // --- Link faults (injected churn). ---

  // Sets the usable-capacity factor of `link`: 0 = hard down, 1 = healthy,
  // in between = degradation. Effective capacity is nominal * factor;
  // in-flight flows are throttled (or starved to rate 0) at the next
  // reallocation — callers decide whether to kill them.
  Status SetLinkFaultFactor(LinkId link, double factor);
  double LinkFaultFactor(LinkId link) const;
  const std::vector<double>& link_fault_factors() const { return fault_factor_; }

  // Active flows whose path crosses `link` (for kill-on-hard-down).
  std::vector<FlowId> FlowsCrossingLink(LinkId link) const;

  // Max over links of bulk_rate - usable_bulk_capacity, normalized by the
  // link's nominal capacity; <= ~0 whenever the allocator respects every
  // (possibly faulted) link. Uses the rates of the last reallocation.
  // 0.0 (no violation) when no link has positive nominal capacity.
  double MaxCapacityViolation() const;

  // --- Background (latency-sensitive) traffic. ---

  // Sets the instantaneous rate consumed by latency-sensitive traffic on a
  // link; the allocator only hands out capacity - background to bulk flows.
  Status SetBackgroundRate(LinkId link, Rate rate);
  Rate BackgroundRate(LinkId link) const;

  // --- Time. ---

  SimTime now() const { return now_; }

  // Advances virtual time to `t`, firing completion callbacks in order.
  Status AdvanceTo(SimTime t);
  Status AdvanceBy(SimTime dt) { return AdvanceTo(now_ + dt); }

  // Advances until no active flows remain or `deadline` is hit; returns the
  // final time.
  StatusOr<SimTime> RunUntilIdle(SimTime deadline = kTimeInfinity);

  // --- Observation. ---

  using CompletionCallback = std::function<void(const FlowRecord&)>;
  void SetCompletionCallback(CompletionCallback cb) { on_complete_ = std::move(cb); }

  // Observes significant per-flow rate changepoints as reallocation applies
  // them: invoked with the flow's tags, the current simulated time, the rate
  // last reported for the flow, and the new rate. A change reports when
  // |new - last_reported| > min_relative_change * max(new, last_reported)
  // (so 0-to-nonzero and nonzero-to-0 always do) — comparing against the
  // last *reported* rate rather than the immediately previous one means the
  // per-update test is two multiply-compares against one cached value, and
  // slow drift that never moves 25% in a single solve still reports once it
  // accumulates. min_relative_change must be in (0, 1).
  //
  // The observer returns whether it wants more changepoints; returning false
  // uninstalls it, so an observer whose downstream budget is spent (see
  // FlightRecorder::WantsRateEvents) costs nothing afterwards. Null (the
  // default) costs one branch per changed rate. The observer must only
  // record — it must not touch the simulator.
  using RateObserver = std::function<bool(int64_t tag, int64_t tag2, SimTime t,
                                          Rate last_reported, Rate new_rate)>;
  void SetRateObserver(RateObserver observer, double min_relative_change = 0.25) {
    rate_observer_ = std::move(observer);
    rate_observer_keep_ = 1.0 - min_relative_change;
  }

  const std::vector<FlowRecord>& completed_flows() const { return completed_; }

  // Caps the completed-flow history kept in completed_flows() so a
  // long-running service stays O(live work): once the vector exceeds the
  // limit (plus amortization slack) the oldest records are dropped and
  // counted in dropped_flow_records(). -1 (the default) keeps everything.
  void set_completed_history_limit(int64_t limit) { completed_history_limit_ = limit; }
  int64_t dropped_flow_records() const { return dropped_flow_records_; }

  // Total bulk bytes that have crossed `link` so far.
  Bytes LinkBytesTransferred(LinkId link) const;

  // Instantaneous bulk utilization (allocated rate / capacity) of `link`.
  double LinkUtilization(LinkId link) const;

  // Current total bulk rate crossing `link`.
  Rate LinkBulkRate(LinkId link) const;

  // Enables a per-link utilization time series (sampled at every event).
  // Tracked links are kept sorted by LinkId, so sampling order (and thus any
  // derived output) is deterministic regardless of registration order.
  void TrackLinkUtilization(LinkId link);
  const TimeSeries* LinkUtilizationSeries(LinkId link) const;

  const Topology& topology() const { return *topo_; }

  // --- Hot-path instrumentation / reference mode. ---

  // Full-reallocation reference mode: every event re-solves every component
  // and the next completion is found by scanning, exactly reproducing what
  // the incremental path must compute. Must be set before any flow starts.
  void set_full_reallocation(bool on);
  bool full_reallocation() const { return full_realloc_; }

  int64_t num_reallocations() const { return num_reallocations_; }
  int64_t num_completion_events() const { return num_events_; }

 private:
  struct CompletionEntry {
    SimTime key = 0.0;  // Projected completion time when pushed.
    FlowId id = kInvalidFlow;
    int32_t slot = -1;   // FlowSoA slot at push (validated against id).
    uint32_t epoch = 0;  // Slot's rate_epoch at push; stale when it moved on.
  };
  struct EntryAfter {
    // Min-heap comparator; (key, id, epoch) is a strict total order, so pop
    // order is independent of insertion order (slot is redundant with id).
    bool operator()(const CompletionEntry& a, const CompletionEntry& b) const {
      if (a.key != b.key) return a.key > b.key;
      if (a.id != b.id) return a.id > b.id;
      return a.epoch > b.epoch;
    }
  };

  // Projected completion time of the flow in `slot` (zero-crossing of
  // remaining bytes); pure function of the slot's anchor state, so heap
  // entries and scans compute identical bits.
  SimTime CompletionKeyAt(int32_t slot) const {
    size_t s = static_cast<size_t>(slot);
    return soa_.current_rate[s] > 0.0
               ? soa_.anchor_time[s] + soa_.remaining[s] / soa_.current_rate[s]
               : kTimeInfinity;
  }

  // -1 when the id is not an active flow. O(1): ids are sequential, so the
  // map is a dense array over the [oldest active, newest] id window.
  int32_t SlotOf(FlowId id) const {
    if (id < id_base_ || id - id_base_ >= static_cast<FlowId>(id_to_slot_.size())) {
      return -1;
    }
    return id_to_slot_[static_cast<size_t>(id - id_base_)];
  }

  // A heap entry is current iff its slot still holds the same flow at the
  // same rate epoch (epochs are monotonic per slot and survive slot reuse,
  // and ids are unique, so this cannot false-positive).
  bool ValidEntry(const CompletionEntry& e) const {
    size_t s = static_cast<size_t>(e.slot);
    return soa_.live(e.slot) && soa_.meta[s].id == e.id && soa_.rate_epoch[s] == e.epoch;
  }

  void MarkDirty(LinkId link);
  // Performs the deferred incidence insertions / dirty marking of flows
  // started since BeginBatch, in submission order.
  void FlushBatchAdds();
  // Physically reorders the SoA pool so flows sharing a first link occupy
  // adjacent slots (and compacts away freed slots), then remaps every
  // slot-bearing structure (incidence rows, id map, live list, completion
  // heap). Slot numbering is unobservable — solves are canonicalized by flow
  // id — so results are bit-identical; only memory layout changes. Run after
  // a bulk CommitBatch, where round-robin submission would otherwise leave
  // each component's flows strided across the pool.
  void ReorderSlotsForLocality();
  // Re-solves dirty components (all components in full mode), updating
  // anchors, epochs, per-link rates, and the completion heap for every flow
  // whose rate actually changed.
  void Reallocate();
  void ReallocateComponent(LinkId seed);
  // Earliest projected completion among active flows; kTimeInfinity if none.
  SimTime NextCompletionTime();
  // Completes every flow whose projected completion equals `t` (now_ == t),
  // fires callbacks after the batch is detached.
  void CompleteBatch(SimTime t);
  // Folds rate * dt into link_bytes_ up to now_ (call before changing the
  // link's aggregate rate).
  void IntegrateLink(LinkId link);
  // Drops stale heap entries and re-heapifies (bounds heap growth under
  // long-running churn).
  void CompactHeap();
  // Integrates + removes the flow's rate from its links, marks them dirty,
  // and drops the flow from the incidence index.
  void DetachFlow(int32_t slot);
  // Releases the slot: id map tombstone, live-list swap-erase, pool free.
  void EraseFlow(int32_t slot);
  // Slides the id window forward once enough leading tombstones accumulate.
  void MaybeCompactIdMap();
  void SampleTrackedLinks();

  const Topology* topo_;
  BandwidthAllocator allocator_;
  LinkFlowIndex incidence_;
  bool full_realloc_ = false;

  SimTime now_ = 0.0;
  FlowId next_flow_id_ = 0;

  FlowSoA soa_;                         // Active-flow pool.
  std::vector<int32_t> live_slots_;     // Dense live-slot list (full-mode scans).
  std::vector<int32_t> slot_live_pos_;  // slot -> index in live_slots_.
  FlowId id_base_ = 0;                  // id_to_slot_[0] corresponds to this id.
  std::vector<int32_t> id_to_slot_;     // -1 = completed/cancelled (tombstone).
  int64_t dead_ids_ = 0;                // Tombstones currently in id_to_slot_.
  int64_t id_compact_at_ = 1024;        // Next tombstone count to compact at.

  bool in_batch_ = false;
  std::vector<int32_t> pending_adds_;  // Slots started since BeginBatch.
  int64_t batch_adds_ = 0;             // Starts in the current batch (survives
                                       // mid-batch flushes, unlike pending_adds_).
  std::vector<int32_t> old_to_new_;    // Reorder scratch.

  std::vector<Rate> background_;             // Per link.
  std::vector<double> fault_factor_;         // Per link, 1 = healthy.
  std::vector<Rate> usable_capacity_;        // max(0, nominal*fault - background).
  std::vector<Rate> link_rate_;              // Aggregate bulk rate per link.
  std::vector<SimTime> link_integrated_at_;  // link_bytes_ valid up to here.
  std::vector<Bytes> link_bytes_;            // Per link, cumulative.
  bool rates_dirty_ = true;

  std::vector<LinkId> dirty_links_;
  std::vector<char> link_dirty_;

  std::vector<CompletionEntry> heap_;  // Min-heap via std::push/pop_heap.

  // Reallocation / completion scratch.
  // Component-solve scratch: the component's slots are scattered across the
  // pool, so ReallocateComponent gathers every per-flow input in one pass
  // (in canonical id order) and runs the solve + epilogue on these
  // contiguous copies, scattering back only what changed.
  std::vector<int32_t> comp_slots_;                  // Canonical (id) order.
  std::vector<std::pair<FlowId, int32_t>> comp_ids_;  // Sort scratch.
  std::vector<uint8_t> slot_present_;  // Dense-window ordering scratch.
  std::vector<int32_t> comp_off_;   // CSR offsets into comp_links_.
  std::vector<LinkId> comp_links_;  // Concatenated component paths.
  std::vector<Rate> comp_pinned_;
  std::vector<Rate> comp_rate_;      // Solver output.
  std::vector<SimTime> comp_keys_;  // Projected completions after the solve.
  std::vector<std::pair<FlowId, int32_t>> batch_;  // (id, slot), sorted by id.

  int64_t num_reallocations_ = 0;
  int64_t num_events_ = 0;

  // Telemetry accumulators: the event loop bumps plain members and
  // PublishTelemetry() folds them into the registry once per drive call
  // (AdvanceTo / RunUntilIdle), so the per-event telemetry cost is a plain
  // increment rather than a registry call (DESIGN.md §11 cost model).
  void PublishTelemetry();
  int64_t telem_flows_started_ = 0;
  int64_t telem_flows_completed_ = 0;
  int64_t telem_events_ = 0;
  int64_t telem_component_solves_ = 0;
  int64_t telem_reallocations_ = 0;
  int64_t telem_dirty_links_ = 0;
  // Local accumulator for the sim.component_flows histogram ([0, 1024), 64
  // bins — the bin math in ReallocateComponent must match this layout),
  // published via HistogramRecordBulk so a solve costs plain increments
  // instead of a per-sample shard walk.
  static constexpr int kCompHistBins = 64;
  static constexpr double kCompHistMax = 1024.0;
  int64_t telem_comp_hist_[kCompHistBins] = {};
  int64_t telem_comp_count_ = 0;
  double telem_comp_sum_ = 0.0;
  double telem_comp_max_ = 0.0;

  CompletionCallback on_complete_;
  RateObserver rate_observer_;
  double rate_observer_keep_ = 0.75;  // 1 - min_relative_change.
  std::vector<FlowRecord> completed_;
  int64_t completed_history_limit_ = -1;
  int64_t dropped_flow_records_ = 0;
  std::vector<std::pair<LinkId, TimeSeries>> tracked_;  // Sorted by LinkId.
};

}  // namespace bds

#endif  // BDS_SRC_SIMULATOR_NETWORK_SIMULATOR_H_
