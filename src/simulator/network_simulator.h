// Fluid flow-level discrete-event network simulator.
//
// Time advances from one flow-completion event to the next; between events
// every flow transfers bytes at the rate the BandwidthAllocator assigned.
// Clients start flows (pinned or fair-share), advance virtual time, and get
// completion callbacks. Background (latency-sensitive) traffic is modelled
// as a per-link rate that shrinks the capacity available to bulk flows —
// exactly how BDS's NetworkMonitor sees it (§5.2).

#ifndef BDS_SRC_SIMULATOR_NETWORK_SIMULATOR_H_
#define BDS_SRC_SIMULATOR_NETWORK_SIMULATOR_H_

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/common/stats.h"
#include "src/common/types.h"
#include "src/simulator/bandwidth_allocator.h"
#include "src/simulator/flow.h"
#include "src/topology/topology.h"

namespace bds {

class NetworkSimulator {
 public:
  explicit NetworkSimulator(const Topology* topo);

  // --- Flow management. ---

  // Starts a flow over `links` carrying `bytes`. pinned_rate == 0 means
  // fair-share. Returns the flow id.
  StatusOr<FlowId> StartFlow(std::vector<LinkId> links, Bytes bytes, Rate pinned_rate = 0.0,
                             int64_t tag = 0, int64_t tag2 = 0);

  // Changes the pinned rate of an in-flight flow (0 switches to fair-share).
  Status RepinFlow(FlowId id, Rate pinned_rate);

  // Cancels an in-flight flow; transferred bytes stay transferred but no
  // completion fires. Returns bytes that had been delivered.
  StatusOr<Bytes> CancelFlow(FlowId id);

  // nullptr when the flow completed or never existed.
  const Flow* FindFlow(FlowId id) const;

  int num_active_flows() const { return static_cast<int>(active_.size()); }

  // --- Link faults (injected churn). ---

  // Sets the usable-capacity factor of `link`: 0 = hard down, 1 = healthy,
  // in between = degradation. Effective capacity is nominal * factor;
  // in-flight flows are throttled (or starved to rate 0) at the next
  // reallocation — callers decide whether to kill them.
  Status SetLinkFaultFactor(LinkId link, double factor);
  double LinkFaultFactor(LinkId link) const;
  const std::vector<double>& link_fault_factors() const { return fault_factor_; }

  // Active flows whose path crosses `link` (for kill-on-hard-down).
  std::vector<FlowId> FlowsCrossingLink(LinkId link) const;

  // Max over links of bulk_rate - usable_bulk_capacity, normalized by the
  // link's nominal capacity; <= ~0 whenever the allocator respects every
  // (possibly faulted) link. Uses the rates of the last reallocation.
  double MaxCapacityViolation() const;

  // --- Background (latency-sensitive) traffic. ---

  // Sets the instantaneous rate consumed by latency-sensitive traffic on a
  // link; the allocator only hands out capacity - background to bulk flows.
  Status SetBackgroundRate(LinkId link, Rate rate);
  Rate BackgroundRate(LinkId link) const;

  // --- Time. ---

  SimTime now() const { return now_; }

  // Advances virtual time to `t`, firing completion callbacks in order.
  Status AdvanceTo(SimTime t);
  Status AdvanceBy(SimTime dt) { return AdvanceTo(now_ + dt); }

  // Advances until no active flows remain or `deadline` is hit; returns the
  // final time.
  StatusOr<SimTime> RunUntilIdle(SimTime deadline = kTimeInfinity);

  // --- Observation. ---

  using CompletionCallback = std::function<void(const FlowRecord&)>;
  void SetCompletionCallback(CompletionCallback cb) { on_complete_ = std::move(cb); }

  const std::vector<FlowRecord>& completed_flows() const { return completed_; }

  // Total bulk bytes that have crossed `link` so far.
  Bytes LinkBytesTransferred(LinkId link) const;

  // Instantaneous bulk utilization (allocated rate / capacity) of `link`.
  double LinkUtilization(LinkId link) const;

  // Current total bulk rate crossing `link`.
  Rate LinkBulkRate(LinkId link) const;

  // Enables a per-link utilization time series (sampled at every event).
  void TrackLinkUtilization(LinkId link);
  const TimeSeries* LinkUtilizationSeries(LinkId link) const;

  const Topology& topology() const { return *topo_; }

 private:
  void Reallocate();
  // Earliest completion among active flows; kTimeInfinity when none.
  SimTime NextCompletionTime() const;
  // Transfers dt's worth of bytes on every active flow; completes those done.
  void Step(SimTime dt);
  void SampleTrackedLinks();

  const Topology* topo_;
  BandwidthAllocator allocator_;

  SimTime now_ = 0.0;
  FlowId next_flow_id_ = 0;

  std::vector<std::unique_ptr<Flow>> active_;
  std::unordered_map<FlowId, size_t> index_;  // id -> position in active_.
  std::vector<Rate> background_;              // Per link.
  std::vector<double> fault_factor_;          // Per link, 1 = healthy.
  std::vector<Bytes> link_bytes_;             // Per link, cumulative.
  std::vector<Rate> capacities_scratch_;
  std::vector<Flow*> flow_ptrs_scratch_;
  bool rates_dirty_ = true;

  CompletionCallback on_complete_;
  std::vector<FlowRecord> completed_;
  std::unordered_map<LinkId, TimeSeries> tracked_;
};

}  // namespace bds

#endif  // BDS_SRC_SIMULATOR_NETWORK_SIMULATOR_H_
