// Link -> flow incidence index for the simulator's per-event hot path.
//
// Per link, a contiguous array of (flow, hop) entries — CSR-like rows that
// support O(1) swap-erase removal because every flow records its position in
// each row (Flow::incidence_pos). The index answers two hot-path questions
// without scanning the full active-flow set:
//   * which flows cross link L (FlowsCrossingLink, kill-on-hard-down);
//   * which flows belong to the connected component of the flow-link
//     incidence graph touched by a change (incremental reallocation).
//
// Component gathering uses generation stamps (per link here, per flow in
// Flow::visit_stamp), so an epoch costs O(component) with no global clears.

#ifndef BDS_SRC_SIMULATOR_LINK_FLOW_INDEX_H_
#define BDS_SRC_SIMULATOR_LINK_FLOW_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/types.h"
#include "src/simulator/flow.h"

namespace bds {

struct LinkFlowEntry {
  Flow* flow = nullptr;
  int32_t hop = 0;  // Index into flow->links identifying this entry's link.
};

class LinkFlowIndex {
 public:
  void Reset(int num_links);

  // Registers `flow` on every link of its path; fills flow->incidence_pos.
  // The flow's path must not repeat a link (NetworkSimulator rejects those).
  void Add(Flow* flow);

  // Unregisters `flow` from every link of its path (swap-erase; the moved
  // entry's flow has its incidence_pos patched).
  void Remove(Flow* flow);

  const std::vector<LinkFlowEntry>& at(LinkId link) const {
    return by_link_[static_cast<size_t>(link)];
  }

  // Starts a new gather generation: link/flow visit stamps from previous
  // epochs become invalid.
  void BeginEpoch() { ++gen_; }

  // Appends every flow in the connected component reachable from `seed` to
  // `out` (BFS over shared links). Returns false without touching `out` when
  // the seed was already gathered this epoch or carries no flows. Flows are
  // appended in BFS order — callers wanting a canonical order must sort.
  bool GatherFrom(LinkId seed, std::vector<Flow*>* out);

 private:
  std::vector<std::vector<LinkFlowEntry>> by_link_;
  std::vector<uint64_t> link_stamp_;
  uint64_t gen_ = 0;
  std::vector<LinkId> queue_;  // BFS scratch.
};

}  // namespace bds

#endif  // BDS_SRC_SIMULATOR_LINK_FLOW_INDEX_H_
