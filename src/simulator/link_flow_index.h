// Link -> flow incidence index for the simulator's per-event hot path.
//
// Per link, a contiguous array of (slot, hop) entries — CSR-like rows that
// support O(1) swap-erase removal because every flow records its position in
// each row (FlowSoA::incidence_pos, stored in the same shared arena as the
// path links). The index answers two hot-path questions without scanning the
// full active-flow set:
//   * which flows cross link L (FlowsCrossingLink, kill-on-hard-down);
//   * which flows belong to the connected component of the flow-link
//     incidence graph touched by a change (incremental reallocation).
//
// Component gathering uses generation stamps (per link here, per flow in
// FlowSoA::visit_stamp), so an epoch costs O(component) with no global
// clears. Entries are 8-byte PODs referring into the SoA pool, so a row walk
// is a contiguous scan with one indexed load per entry — no pointer chasing.

#ifndef BDS_SRC_SIMULATOR_LINK_FLOW_INDEX_H_
#define BDS_SRC_SIMULATOR_LINK_FLOW_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/types.h"
#include "src/simulator/flow_soa.h"

namespace bds {

struct LinkFlowEntry {
  int32_t slot = 0;  // FlowSoA slot of the flow crossing this link.
  int32_t hop = 0;   // Index into the flow's path identifying this link.
};

class LinkFlowIndex {
 public:
  void Reset(int num_links);

  // Registers the flow in `slot` on every link of its path; fills the slot's
  // incidence_pos row. The path must not repeat a link (NetworkSimulator
  // rejects those).
  void Add(FlowSoA& soa, int32_t slot);

  // Unregisters the flow in `slot` from every link of its path (swap-erase;
  // the moved entry's flow has its incidence_pos patched).
  void Remove(FlowSoA& soa, int32_t slot);

  const std::vector<LinkFlowEntry>& at(LinkId link) const {
    return by_link_[static_cast<size_t>(link)];
  }

  // Starts a new gather generation: link/flow visit stamps from previous
  // epochs become invalid.
  void BeginEpoch() { ++gen_; }

  // Appends every flow slot in the connected component reachable from `seed`
  // to `out` (BFS over shared links). Returns false without touching `out`
  // when the seed was already gathered this epoch or carries no flows. Slots
  // are appended in BFS order — callers wanting a canonical order must sort.
  bool GatherFrom(LinkId seed, FlowSoA& soa, std::vector<int32_t>* out);

  // Rewrites every row entry's slot through old_to_new after the pool was
  // reordered (FlowSoA::CompactAndReorder). Row order and hop/position
  // fields are untouched — only the slot numbers change.
  void RemapSlots(const std::vector<int32_t>& old_to_new);

  // Full-scan invariant check: every row entry's (slot, hop) must point back
  // at this link, and the slot's incidence_pos must point back at the entry.
  // O(total incidence); meant for tests and the debug-build hooks below.
  void CheckConsistency(const FlowSoA& soa) const;

 private:
  std::vector<std::vector<LinkFlowEntry>> by_link_;
  std::vector<uint64_t> link_stamp_;
  uint64_t gen_ = 0;
  std::vector<LinkId> queue_;  // BFS scratch.
};

}  // namespace bds

#endif  // BDS_SRC_SIMULATOR_LINK_FLOW_INDEX_H_
