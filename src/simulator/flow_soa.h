// Dense struct-of-arrays storage for the simulator's active flows.
//
// The simulator's per-event hot loops (component gather, max-min waterfill,
// completion-heap validation) used to chase a `unique_ptr<Flow>` per flow,
// each owning two heap vectors (`links`, `incidence_pos`) — three dependent
// cache misses per flow touched. At 10^5-10^6 concurrent flows that pointer
// graph *is* the cost. FlowSoA replaces it with parallel arrays indexed by a
// dense **slot**:
//
//  * hot scalars (`remaining`, `anchor_time`, `current_rate`, `rate_epoch`)
//    are one contiguous array each, so a component solve streams them;
//  * per-slot identity (`id`, path location, `pinned_rate`, BFS visit stamp)
//    packs into one 32-byte `FlowMeta` record — visiting a scattered slot
//    costs one cache line;
//  * every flow's path lives in one shared CSR-style arena
//    (`path_links` + the parallel `incidence_pos`), addressed by
//    `meta[slot].path` — iterating a path is a contiguous scan, not a
//    heap-vector dereference;
//  * slots are recycled through a free list (LIFO, deterministic), so churn
//    does not allocate: a reused slot whose new path fits the old arena row
//    writes in place, and `MaybeCompactArena` reclaims leaked rows when the
//    arena's dead space exceeds its live footprint.
//
// `rate_epoch` is monotonic per slot and is NOT reset on reuse: a stale
// completion-heap entry can therefore never collide with a later occupant of
// the same slot (see NetworkSimulator's heap validation).
//
// FlowSoA stores no per-flow ownership or identity logic beyond the id
// column; NetworkSimulator owns id assignment and the id -> slot map.

#ifndef BDS_SRC_SIMULATOR_FLOW_SOA_H_
#define BDS_SRC_SIMULATOR_FLOW_SOA_H_

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "src/common/huge_alloc.h"
#include "src/common/types.h"

namespace bds {

// A slot's row in the shared CSR arena. begin and len live in one 8-byte
// record so locating a scattered slot's path costs one cache line, not two.
struct PathRef {
  int32_t begin = 0;
  int32_t len = 0;
};

// Per-slot identity block: every field the component gather and BFS read
// besides the four rate-state columns. 32 bytes — two records per cache
// line, never straddling — so visiting a scattered slot (stamp check, path
// lookup, id read, pinned classification) costs ONE line instead of the four
// it cost as separate columns.
struct FlowMeta {
  FlowId id = kInvalidFlow;        // kInvalidFlow while the slot is free.
  PathRef path;                    // This slot's row in the arena.
  Rate pinned_rate = 0.0;          // 0 = fair share.
  uint64_t visit_stamp = 0;        // Component-gather generation marker.
};

class FlowSoA {
 public:
  // Allocates a slot (reusing a freed one when available) and copies `path`
  // into the CSR arena. The slot's hot scalars are zero-initialized except
  // `rate_epoch`, which keeps counting from the previous occupant.
  int32_t Allocate(FlowId flow_id, const LinkId* path, int32_t len);

  // Releases `slot` back to the free list. The arena row is kept attached to
  // the slot for reuse; rows orphaned by reuse with a longer path are
  // reclaimed by MaybeCompactArena.
  void Free(int32_t slot);

  // Rebuilds the arena without dead rows once the dead space exceeds the
  // live footprint (amortized O(live links); does not move slots).
  void MaybeCompactArena();

  // Rewrites the pool so that old slot order[i] becomes new slot i, dropping
  // free slots and dead arena rows (capacity() becomes n == num_live()).
  // Callers pass a locality-sorted order so that flows sharing links end up
  // in adjacent slots, turning the component gather's strided reads into
  // sequential ones. Fills old_to_new (sized to the old capacity, -1 for
  // freed slots) so the owner can remap every structure that stores slots.
  // rate_epoch moves with its flow, so completion-heap entries stay valid
  // once their slot field is remapped through old_to_new.
  void CompactAndReorder(const int32_t* order, int32_t n, std::vector<int32_t>* old_to_new);

  // Drops every slot and arena row but keeps the vectors' capacity, so a
  // scratch pool (e.g. the allocator's Flow-based shim) can be refilled
  // without reallocating. Resets rate_epoch history — do not use on a pool
  // whose epochs are referenced externally (the simulator never clears).
  void Clear();

  int32_t capacity() const { return static_cast<int32_t>(meta.size()); }
  int32_t num_live() const { return num_live_; }
  bool live(int32_t slot) const { return live_[static_cast<size_t>(slot)] != 0; }

  const LinkId* links(int32_t slot) const {
    return path_links.data() + meta[static_cast<size_t>(slot)].path.begin;
  }
  int32_t num_links(int32_t slot) const {
    return meta[static_cast<size_t>(slot)].path.len;
  }
  int32_t* inc_pos(int32_t slot) {
    return incidence_pos.data() + meta[static_cast<size_t>(slot)].path.begin;
  }
  const int32_t* inc_pos(int32_t slot) const {
    return incidence_pos.data() + meta[static_cast<size_t>(slot)].path.begin;
  }

  // --- Parallel arrays, indexed by slot. HugeVector marks each column's
  // buffer MADV_HUGEPAGE (a component's slots are scattered across the pool,
  // so on 4K pages every touch is its own TLB entry; on kernels that honor
  // the madvise the working set collapses to a handful of entries). ---
  // Hot: touched by every reallocation of a component containing the slot.
  HugeVector<Bytes> remaining;      // As of anchor_time (lazy progress).
  HugeVector<SimTime> anchor_time;
  HugeVector<Rate> current_rate;
  HugeVector<uint32_t> rate_epoch;  // Monotonic per slot, survives reuse.
  HugeVector<uint32_t> heap_epoch;  // rate_epoch at last completion-heap
                                    // push; == rate_epoch means a valid
                                    // entry is already in the heap.
  HugeVector<FlowMeta> meta;  // id / path row / pinned rate / visit stamp.
  // Cold: read at start/completion/query only.
  HugeVector<Bytes> total_bytes;
  HugeVector<SimTime> start_time;
  HugeVector<int64_t> tag;
  HugeVector<int64_t> tag2;
  // Rate last handed to the rate observer (0 until the first report). Only
  // touched when an observer is installed; lets the changepoint test be a
  // band check against precomputed semantics (see ReallocateComponent)
  // instead of per-update fabs/max arithmetic, and makes slow drift
  // reportable where a compare-to-previous test would sleep through it.
  HugeVector<Rate> reported_rate;

  // --- Shared CSR arena. incidence_pos[i] is the position of path_links[i]
  // in LinkFlowIndex's per-link row (kept in sync by its swap-erase). ---
  HugeVector<LinkId> path_links;
  HugeVector<int32_t> incidence_pos;

 private:
  std::vector<int32_t> path_cap_;  // Arena row capacity owned by each slot.
  std::vector<char> live_;
  std::vector<int32_t> free_slots_;  // LIFO; deterministic reuse order.
  int32_t num_live_ = 0;
  int64_t arena_dead_ = 0;  // Arena elements owned by no slot (orphaned rows).
};

// Every SoA column must be memmovable for the arena/slot recycling (and for
// the vectorizable scans the layout exists to enable): enforce it at compile
// time so a future field cannot silently de-optimize the pool.
static_assert(std::is_trivially_copyable_v<Bytes> && std::is_trivially_destructible_v<Bytes>);
static_assert(std::is_trivially_copyable_v<SimTime> &&
              std::is_trivially_destructible_v<SimTime>);
static_assert(std::is_trivially_copyable_v<Rate> && std::is_trivially_destructible_v<Rate>);
static_assert(std::is_trivially_copyable_v<FlowId> &&
              std::is_trivially_destructible_v<FlowId>);
static_assert(std::is_trivially_copyable_v<LinkId> &&
              std::is_trivially_destructible_v<LinkId>);
static_assert(std::is_trivially_copyable_v<uint32_t> && std::is_trivially_copyable_v<int32_t> &&
              std::is_trivially_copyable_v<int64_t> && std::is_trivially_copyable_v<uint64_t>);
static_assert(std::is_trivially_copyable_v<PathRef> &&
              std::is_trivially_destructible_v<PathRef> && sizeof(PathRef) == 8);
static_assert(std::is_trivially_copyable_v<FlowMeta> &&
              std::is_trivially_destructible_v<FlowMeta> && sizeof(FlowMeta) == 32,
              "FlowMeta must stay two-per-cache-line; a field that pads it "
              "past 32 bytes makes every scattered slot visit straddle lines");

}  // namespace bds

#endif  // BDS_SRC_SIMULATOR_FLOW_SOA_H_
