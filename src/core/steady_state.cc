#include "src/core/steady_state.h"

#include <cstdio>
#include <cstring>
#include <sstream>

namespace bds {

Status ValidateSteadyStateOptions(const SteadyStateOptions& options) {
  if (options.duration <= 0.0) {
    return InvalidArgumentError("RunSteadyState: duration must be positive");
  }
  if (options.drain && options.drain_limit < 0.0) {
    return InvalidArgumentError("RunSteadyState: drain_limit must be non-negative");
  }
  if (options.max_cycle_stats < 0) {
    return InvalidArgumentError("RunSteadyState: max_cycle_stats must be >= 0");
  }
  BDS_RETURN_IF_ERROR(telemetry::ValidateTimeseriesOptions(options.timeseries));
  return Status::Ok();
}

uint64_t SteadyStateReport::Fingerprint() const {
  uint64_t h = run.Fingerprint();
  auto mix = [&h](uint64_t v) {
    h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
    h *= 0xBF58476D1CE4E5B9ULL;
    h ^= h >> 31;
  };
  mix(transition_digest);
  mix(static_cast<uint64_t>(jobs_generated));
  mix(static_cast<uint64_t>(admission.offered));
  mix(static_cast<uint64_t>(admission.accepted));
  mix(static_cast<uint64_t>(admission.rejected));
  mix(static_cast<uint64_t>(admission.deferred));
  return h;
}

std::string SteadyStateReport::ToString() const {
  std::ostringstream os;
  char buf[256];
  os << "steady-state: stop=" << StopReasonName(run.stop_reason)
     << " cycles=" << run.total_cycles << "\n";
  std::snprintf(buf, sizeof(buf),
                "jobs: generated=%lld offered=%lld accepted=%lld rejected=%lld "
                "deferred=%lld completed=%lld\n",
                static_cast<long long>(jobs_generated),
                static_cast<long long>(admission.offered),
                static_cast<long long>(admission.accepted),
                static_cast<long long>(admission.rejected),
                static_cast<long long>(admission.deferred),
                static_cast<long long>(jobs_completed));
  os << buf;
  std::snprintf(buf, sizeof(buf),
                "completion minutes: p50=%.2f p95=%.2f p99=%.2f mean=%.2f max=%.2f\n",
                completion_p50_minutes, completion_p95_minutes, completion_p99_minutes,
                completion_mean_minutes, completion_max_minutes);
  os << buf;
  std::snprintf(buf, sizeof(buf), "overload: overruns=%lld worst_overrun=%.2fs rung_cycles=[",
                static_cast<long long>(cycle_overruns), worst_overrun_seconds);
  os << buf;
  for (size_t r = 0; r < rung_cycles.size(); ++r) {
    os << (r == 0 ? "" : " ") << DegradationRungName(static_cast<DegradationRung>(r)) << "="
       << rung_cycles[r];
  }
  os << "] transitions=" << transitions.size() << "\n";
  std::snprintf(buf, sizeof(buf),
                "memory: peak_pending=%lld peak_jobs=%lld peak_flows=%lld retired_jobs=%lld "
                "retired_blocks=%lld live_at_end(jobs=%lld pending=%lld)\n",
                static_cast<long long>(peak_live_pending),
                static_cast<long long>(peak_live_jobs),
                static_cast<long long>(peak_live_flows),
                static_cast<long long>(retired_jobs), static_cast<long long>(retired_blocks),
                static_cast<long long>(live_jobs_at_end),
                static_cast<long long>(live_pending_at_end));
  os << buf;
  if (timeseries_samples > 0) {
    int64_t active = 0;
    for (const telemetry::SloAlert& a : slo_alerts) {
      if (a.active()) {
        ++active;
      }
    }
    std::snprintf(buf, sizeof(buf),
                  "slo: samples=%lld alerts=%lld (active=%lld) burn_fast=%.2f burn_slow=%.2f\n",
                  static_cast<long long>(timeseries_samples),
                  static_cast<long long>(slo_alerts.size()), static_cast<long long>(active),
                  burn_fast_at_end, burn_slow_at_end);
    os << buf;
  }
  return os.str();
}

}  // namespace bds
