// Umbrella header: everything a BDS library user needs.
//
//   #include "src/core/bds.h"
//
// pulls in the service facade, options, topology builders, the workload
// generators and the run reports. Individual modules can still be included
// directly for finer-grained use.

#ifndef BDS_SRC_CORE_BDS_H_
#define BDS_SRC_CORE_BDS_H_

#include "src/baselines/akamai.h"
#include "src/baselines/chain.h"
#include "src/baselines/gingko.h"
#include "src/baselines/ideal.h"
#include "src/baselines/strategy.h"
#include "src/common/logging.h"
#include "src/common/status.h"
#include "src/common/types.h"
#include "src/core/options.h"
#include "src/core/service.h"
#include "src/topology/builders.h"
#include "src/topology/topology.h"
#include "src/workload/background_traffic.h"
#include "src/workload/job.h"
#include "src/workload/trace_generator.h"

#endif  // BDS_SRC_CORE_BDS_H_
