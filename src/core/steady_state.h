// Long-running service mode: open-loop arrivals into a live BdsService with
// overload protection, instead of the batch generate → drain → report shape
// the rest of the harness uses.
//
// RunSteadyState wires four pieces configured here onto the controller:
// an ArrivalProcess feeding jobs for `duration` simulated seconds, the
// AdmissionController gating them, the CycleWatchdog pricing every cycle and
// driving the degradation ladder, and bounded-memory retirement so a
// multi-simulated-day soak runs in O(live work). The SteadyStateReport pulls
// the service-level outcome together: completion-time percentiles, ladder
// occupancy and transitions, admission counts, and memory high-water marks.

#ifndef BDS_SRC_CORE_STEADY_STATE_H_
#define BDS_SRC_CORE_STEADY_STATE_H_

#include <array>
#include <string>
#include <vector>

#include "src/control/controller.h"
#include "src/control/overload.h"
#include "src/scheduler/admission.h"
#include "src/telemetry/timeseries.h"
#include "src/workload/arrival_process.h"

namespace bds {

struct SteadyStateOptions {
  // Arrivals are generated for `duration` simulated seconds; with `drain`
  // the run then continues (no new arrivals) until the backlog empties or
  // `drain_limit` more seconds pass.
  SimTime duration = Hours(1.0);
  bool drain = true;
  SimTime drain_limit = Hours(2.0);

  // Arrival timing and job shapes. num_dcs, first_job_id, and block_size are
  // filled in from the service/topology; everything else is honoured as-is.
  ArrivalProcessOptions arrivals;

  // Admission control and the cycle-deadline watchdog. Both default to
  // disabled — set `enabled` to engage them.
  AdmissionOptions admission;
  OverloadOptions overload;

  // Bounded memory: retire completed jobs, cap the simulator's
  // completed-flow history (-1 keeps all) and the retained CycleStats
  // (0 keeps all).
  bool retire_completed = true;
  int64_t completed_flow_history = 4096;
  int64_t max_cycle_stats = 2048;

  // Simulated-time SLO sampler + burn-rate alerts (disabled by default;
  // purely observational — never enters the Fingerprint).
  telemetry::TimeseriesOptions timeseries;
};

struct SteadyStateReport {
  RunReport run;

  // Arrival / admission outcome.
  int64_t jobs_generated = 0;
  AdmissionStats admission;
  double estimated_service_rate = 0.0;  // Deliveries per cycle (EWMA).

  // Completion times of admitted jobs, in minutes.
  int64_t jobs_completed = 0;
  double completion_p50_minutes = 0.0;
  double completion_p95_minutes = 0.0;
  double completion_p99_minutes = 0.0;
  double completion_mean_minutes = 0.0;
  double completion_max_minutes = 0.0;

  // Watchdog / degradation ladder.
  int64_t cycle_overruns = 0;
  double worst_overrun_seconds = 0.0;
  std::array<int64_t, kNumDegradationRungs> rung_cycles{};
  std::vector<RungTransition> transitions;
  uint64_t transition_digest = 0;

  // Bounded-memory evidence: peaks plateau, retired counts grow, and the
  // live residue at the end is small.
  int64_t peak_live_pending = 0;
  int64_t peak_live_jobs = 0;
  int64_t peak_live_flows = 0;
  int64_t retired_jobs = 0;
  int64_t retired_blocks = 0;
  int64_t live_jobs_at_end = 0;
  int64_t live_pending_at_end = 0;
  int64_t dropped_flow_records = 0;

  // SLO time-series outcome (only populated when options.timeseries.enabled).
  // Deliberately OUTSIDE Fingerprint(): the sampler is observational and the
  // CPU series it folds are wall-clock-derived.
  int64_t timeseries_samples = 0;
  double burn_fast_at_end = 0.0;
  double burn_slow_at_end = 0.0;
  std::vector<telemetry::SloAlert> slo_alerts;

  // run.Fingerprint() extended with the transition log, admission counts,
  // and the generated-job count — the full determinism surface of a
  // steady-state run.
  uint64_t Fingerprint() const;

  // Multi-line human-readable summary for benches and examples.
  std::string ToString() const;
};

Status ValidateSteadyStateOptions(const SteadyStateOptions& options);

}  // namespace bds

#endif  // BDS_SRC_CORE_STEADY_STATE_H_
