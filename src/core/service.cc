#include "src/core/service.h"

#include <utility>

namespace bds {

ControllerOptions ToControllerOptions(const BdsOptions& options) {
  ControllerOptions c;
  c.algorithm.cycle_length = options.cycle_length;
  c.algorithm.fptas_epsilon = options.fptas_epsilon;
  c.algorithm.merge_subtasks = options.merge_subtasks;
  c.algorithm.use_exact_lp = options.use_exact_lp;
  c.algorithm.max_wan_routes = options.max_wan_routes;
  c.algorithm.max_deliveries_per_cycle = options.max_deliveries_per_cycle;
  c.algorithm.num_threads = options.num_threads;
  c.algorithm.num_shards = options.num_shards;
  c.algorithm.warm_start = options.warm_start;
  c.algorithm.split_contended = options.split_contended;
  c.separation.safety_threshold = options.safety_threshold;
  c.separation.bulk_rate_cap = options.bulk_rate_cap;
  c.fallback.visibility = options.fallback_visibility;
  c.replication.num_replicas = options.controller_replicas;
  c.controller_dc = options.controller_dc;
  c.measure_delays = options.measure_delays;
  c.model_decision_latency = options.model_decision_latency;
  c.validate_invariants = options.validate_invariants;
  c.seed = options.seed;
  c.latency.seed = options.seed ^ 0x17AB;
  return c;
}

BdsService::BdsService(Topology topo, WanRoutingTable routing, BdsOptions options)
    : topo_(std::move(topo)), routing_(std::move(routing)), options_(options) {
  controller_ = std::make_unique<BdsController>(&topo_, &routing_, ToControllerOptions(options_));
}

StatusOr<std::unique_ptr<BdsService>> BdsService::Create(Topology topo, BdsOptions options) {
  if (topo.num_dcs() < 2) {
    return InvalidArgumentError("BdsService: need at least 2 DCs");
  }
  if (options.controller_dc < 0 || options.controller_dc >= topo.num_dcs()) {
    return InvalidArgumentError("BdsService: controller DC out of range");
  }
  if (options.block_size <= 0.0 || options.cycle_length <= 0.0) {
    return InvalidArgumentError("BdsService: block size and cycle length must be positive");
  }
  auto routing = WanRoutingTable::Build(topo, options.max_wan_routes);
  if (!routing.ok()) {
    return routing.status();
  }
  return std::unique_ptr<BdsService>(
      new BdsService(std::move(topo), std::move(routing).value(), options));
}

StatusOr<JobId> BdsService::CreateJob(DcId source_dc, std::vector<DcId> dest_dcs, Bytes bytes,
                                      SimTime start_time, std::string app_type) {
  auto job = MakeJob(next_job_id_, source_dc, std::move(dest_dcs), bytes, options_.block_size,
                     start_time, std::move(app_type));
  if (!job.ok()) {
    return job.status();
  }
  BDS_RETURN_IF_ERROR(controller_->SubmitJob(*job));
  return next_job_id_++;
}

Status BdsService::SubmitJob(const MulticastJob& job) {
  Status s = controller_->SubmitJob(job);
  if (s.ok()) {
    next_job_id_ = std::max(next_job_id_, job.id + 1);
  }
  return s;
}

Status BdsService::InjectServerFailure(ServerId server, SimTime at) {
  return controller_->ScheduleServerFailure(server, at);
}

Status BdsService::InjectServerRecovery(ServerId server, SimTime at) {
  return controller_->ScheduleServerRecovery(server, at);
}

Status BdsService::InjectControllerOutage(SimTime from, SimTime to) {
  return controller_->ScheduleControllerOutage(from, to);
}

StatusOr<ChaosPlan> BdsService::InstallChaos(uint64_t seed, const ChaosOptions& options) {
  auto plan = InstallRandomChaos(topo_, seed, options, controller_->mutable_fault_injector());
  if (!plan.ok()) {
    return plan.status();
  }
  for (const auto& [from, to] : plan->controller_outages) {
    BDS_RETURN_IF_ERROR(controller_->ScheduleControllerOutage(from, to));
  }
  for (const ChaosPlan::ReplicaFailureEvent& e : plan->replica_failures) {
    BDS_RETURN_IF_ERROR(controller_->ScheduleReplicaFailure(e.replica, e.fail_at));
    BDS_RETURN_IF_ERROR(controller_->ScheduleReplicaRecovery(e.replica, e.recover_at));
  }
  return plan;
}

void BdsService::EnableBackgroundTraffic(BackgroundTrafficModel::Options options) {
  background_ = std::make_unique<BackgroundTrafficModel>(&topo_, options);
  controller_->SetBackgroundTraffic(background_.get());
}

StatusOr<RunReport> BdsService::Run(SimTime deadline) { return controller_->Run(deadline); }

StatusOr<SteadyStateReport> BdsService::RunSteadyState(const SteadyStateOptions& options) {
  BDS_RETURN_IF_ERROR(ValidateSteadyStateOptions(options));

  ArrivalProcessOptions ap = options.arrivals;
  ap.num_dcs = topo_.num_dcs();
  ap.block_size = options_.block_size;
  ap.first_job_id = next_job_id_;
  BDS_RETURN_IF_ERROR(ValidateArrivalOptions(ap));
  ArrivalProcess arrivals(std::move(ap));

  controller_->ConfigureOverload(options.overload);
  controller_->ConfigureAdmission(options.admission);
  controller_->ConfigureRetirement(options.retire_completed, options.completed_flow_history,
                                   options.max_cycle_stats);
  BDS_RETURN_IF_ERROR(controller_->ConfigureTimeseries(options.timeseries));
  controller_->SetArrivalProcess(&arrivals, options.duration);

  const SimTime deadline = options.duration + (options.drain ? options.drain_limit : 0.0);
  auto run = controller_->Run(deadline);
  // The arrival process is stack-local: detach it before any return so the
  // controller never holds a dangling pointer.
  controller_->SetArrivalProcess(nullptr, 0.0);
  next_job_id_ = std::max(next_job_id_, arrivals.next_job_id());
  if (!run.ok()) {
    return run.status();
  }

  SteadyStateReport report;
  report.run = std::move(run).value();
  report.jobs_generated = arrivals.generated();
  report.admission = controller_->admission().stats();
  report.estimated_service_rate = controller_->admission().estimated_service_rate();
  report.jobs_completed = report.run.jobs_completed_total;
  report.completion_p50_minutes = ToMinutes(report.run.completion_p50);
  report.completion_p95_minutes = ToMinutes(report.run.completion_p95);
  report.completion_p99_minutes = ToMinutes(report.run.completion_p99);
  if (!report.run.job_durations.empty()) {
    report.completion_mean_minutes = ToMinutes(report.run.job_durations.Mean());
    report.completion_max_minutes = ToMinutes(report.run.job_durations.Max());
  }
  const CycleWatchdog& watchdog = controller_->watchdog();
  report.cycle_overruns = watchdog.overrun_cycles();
  report.worst_overrun_seconds = watchdog.worst_overrun_seconds();
  report.rung_cycles = watchdog.rung_cycles();
  report.transitions = watchdog.transitions();
  report.transition_digest = watchdog.TransitionDigest();
  report.peak_live_pending = report.run.peak_live_pending;
  report.peak_live_jobs = report.run.peak_live_jobs;
  report.peak_live_flows = report.run.peak_live_flows;
  report.retired_jobs = report.run.retired_jobs;
  report.retired_blocks = report.run.retired_blocks;
  report.live_jobs_at_end = controller_->state().num_live_jobs();
  report.live_pending_at_end = controller_->state().num_pending();
  report.dropped_flow_records = controller_->simulator().dropped_flow_records();
  if (const telemetry::SloTimeseries* ts = controller_->timeseries(); ts != nullptr) {
    report.timeseries_samples = ts->samples();
    report.burn_fast_at_end = ts->burn_fast();
    report.burn_slow_at_end = ts->burn_slow();
    report.slo_alerts = ts->alerts();
    if (!options.timeseries.jsonl_path.empty()) {
      BDS_RETURN_IF_ERROR(ts->WriteJsonl(options.timeseries.jsonl_path));
    }
  }
  return report;
}

StatusOr<MulticastRunResult> BdsStrategy::Run(const Topology& topo,
                                              const WanRoutingTable& routing,
                                              const MulticastJob& job, uint64_t seed,
                                              SimTime deadline) {
  BdsOptions opt = options_;
  opt.seed = seed;
  ControllerOptions copt = ToControllerOptions(opt);
  BdsController controller(&topo, &routing, copt);
  BDS_RETURN_IF_ERROR(controller.SubmitJob(job));
  auto report = controller.Run(deadline);
  if (!report.ok()) {
    return report.status();
  }
  MulticastRunResult result;
  result.completed = report->completed;
  result.completion_time = report->completion_time;
  result.server_completion = report->server_completion;
  for (const auto& [dc, t] : report->dc_completion) {
    result.dc_completion.emplace(dc, t);
  }
  result.deliveries = report->deliveries;
  return result;
}

}  // namespace bds
