#include "src/core/service.h"

#include <utility>

namespace bds {

ControllerOptions ToControllerOptions(const BdsOptions& options) {
  ControllerOptions c;
  c.algorithm.cycle_length = options.cycle_length;
  c.algorithm.fptas_epsilon = options.fptas_epsilon;
  c.algorithm.merge_subtasks = options.merge_subtasks;
  c.algorithm.use_exact_lp = options.use_exact_lp;
  c.algorithm.max_wan_routes = options.max_wan_routes;
  c.algorithm.max_deliveries_per_cycle = options.max_deliveries_per_cycle;
  c.algorithm.num_threads = options.num_threads;
  c.algorithm.num_shards = options.num_shards;
  c.separation.safety_threshold = options.safety_threshold;
  c.separation.bulk_rate_cap = options.bulk_rate_cap;
  c.fallback.visibility = options.fallback_visibility;
  c.replication.num_replicas = options.controller_replicas;
  c.controller_dc = options.controller_dc;
  c.measure_delays = options.measure_delays;
  c.model_decision_latency = options.model_decision_latency;
  c.validate_invariants = options.validate_invariants;
  c.seed = options.seed;
  c.latency.seed = options.seed ^ 0x17AB;
  return c;
}

BdsService::BdsService(Topology topo, WanRoutingTable routing, BdsOptions options)
    : topo_(std::move(topo)), routing_(std::move(routing)), options_(options) {
  controller_ = std::make_unique<BdsController>(&topo_, &routing_, ToControllerOptions(options_));
}

StatusOr<std::unique_ptr<BdsService>> BdsService::Create(Topology topo, BdsOptions options) {
  if (topo.num_dcs() < 2) {
    return InvalidArgumentError("BdsService: need at least 2 DCs");
  }
  if (options.controller_dc < 0 || options.controller_dc >= topo.num_dcs()) {
    return InvalidArgumentError("BdsService: controller DC out of range");
  }
  if (options.block_size <= 0.0 || options.cycle_length <= 0.0) {
    return InvalidArgumentError("BdsService: block size and cycle length must be positive");
  }
  auto routing = WanRoutingTable::Build(topo, options.max_wan_routes);
  if (!routing.ok()) {
    return routing.status();
  }
  return std::unique_ptr<BdsService>(
      new BdsService(std::move(topo), std::move(routing).value(), options));
}

StatusOr<JobId> BdsService::CreateJob(DcId source_dc, std::vector<DcId> dest_dcs, Bytes bytes,
                                      SimTime start_time, std::string app_type) {
  auto job = MakeJob(next_job_id_, source_dc, std::move(dest_dcs), bytes, options_.block_size,
                     start_time, std::move(app_type));
  if (!job.ok()) {
    return job.status();
  }
  BDS_RETURN_IF_ERROR(controller_->SubmitJob(*job));
  return next_job_id_++;
}

Status BdsService::SubmitJob(const MulticastJob& job) {
  Status s = controller_->SubmitJob(job);
  if (s.ok()) {
    next_job_id_ = std::max(next_job_id_, job.id + 1);
  }
  return s;
}

Status BdsService::InjectServerFailure(ServerId server, SimTime at) {
  return controller_->ScheduleServerFailure(server, at);
}

Status BdsService::InjectServerRecovery(ServerId server, SimTime at) {
  return controller_->ScheduleServerRecovery(server, at);
}

Status BdsService::InjectControllerOutage(SimTime from, SimTime to) {
  return controller_->ScheduleControllerOutage(from, to);
}

StatusOr<ChaosPlan> BdsService::InstallChaos(uint64_t seed, const ChaosOptions& options) {
  auto plan = InstallRandomChaos(topo_, seed, options, controller_->mutable_fault_injector());
  if (!plan.ok()) {
    return plan.status();
  }
  for (const auto& [from, to] : plan->controller_outages) {
    BDS_RETURN_IF_ERROR(controller_->ScheduleControllerOutage(from, to));
  }
  return plan;
}

void BdsService::EnableBackgroundTraffic(BackgroundTrafficModel::Options options) {
  background_ = std::make_unique<BackgroundTrafficModel>(&topo_, options);
  controller_->SetBackgroundTraffic(background_.get());
}

StatusOr<RunReport> BdsService::Run(SimTime deadline) { return controller_->Run(deadline); }

StatusOr<MulticastRunResult> BdsStrategy::Run(const Topology& topo,
                                              const WanRoutingTable& routing,
                                              const MulticastJob& job, uint64_t seed,
                                              SimTime deadline) {
  BdsOptions opt = options_;
  opt.seed = seed;
  ControllerOptions copt = ToControllerOptions(opt);
  BdsController controller(&topo, &routing, copt);
  BDS_RETURN_IF_ERROR(controller.SubmitJob(job));
  auto report = controller.Run(deadline);
  if (!report.ok()) {
    return report.status();
  }
  MulticastRunResult result;
  result.completed = report->completed;
  result.completion_time = report->completion_time;
  result.server_completion = report->server_completion;
  for (const auto& [dc, t] : report->dc_completion) {
    result.dc_completion.emplace(dc, t);
  }
  result.deliveries = report->deliveries;
  return result;
}

}  // namespace bds
