// BdsService — the library's main entry point.
//
// Mirrors the integration story of §5.4: an application names the source DC,
// the destination DCs and the bulk data; BDS installs agents on the
// intermediate servers and runs the distribution at the requested start
// time. Here the "deployment" is a simulated multi-DC testbed, so Run()
// advances virtual time until every job lands.
//
//   auto service = BdsService::Create(BuildGeoTopology(topo_options).value(),
//                                     BdsOptions{});
//   JobId job = service->CreateJob(/*source_dc=*/0, /*dest_dcs=*/{1, 2, 3},
//                                  /*bytes=*/GB(64.0)).value();
//   RunReport report = service->Run().value();

#ifndef BDS_SRC_CORE_SERVICE_H_
#define BDS_SRC_CORE_SERVICE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/baselines/strategy.h"
#include "src/common/status.h"
#include "src/core/options.h"
#include "src/core/steady_state.h"
#include "src/fault/chaos.h"
#include "src/topology/routing.h"
#include "src/topology/topology.h"
#include "src/workload/background_traffic.h"
#include "src/workload/job.h"

namespace bds {

class BdsService {
 public:
  // Builds the WAN routing table and control plane for `topo`.
  static StatusOr<std::unique_ptr<BdsService>> Create(Topology topo, BdsOptions options);

  // Registers a multicast job; `start_time` is in simulation seconds.
  StatusOr<JobId> CreateJob(DcId source_dc, std::vector<DcId> dest_dcs, Bytes bytes,
                            SimTime start_time = 0.0, std::string app_type = "app");

  // Submits an externally built job (trace replay).
  Status SubmitJob(const MulticastJob& job);

  // Failure / traffic injection — must be called before Run(). Malformed
  // scripts (unknown server, duplicate failure, recovery of a healthy
  // server, inverted outage window) are rejected.
  Status InjectServerFailure(ServerId server, SimTime at);
  Status InjectServerRecovery(ServerId server, SimTime at);
  Status InjectControllerOutage(SimTime from, SimTime to);
  // Enables diurnal latency-sensitive traffic on all WAN links.
  void EnableBackgroundTraffic(BackgroundTrafficModel::Options options);

  // Seeded fault injection (src/fault). Configure link / control-plane /
  // data-plane faults directly on the injector, or install a randomized
  // combined schedule in one call (the chaos soak's entry point).
  FaultInjector* mutable_fault_injector() { return controller_->mutable_fault_injector(); }
  StatusOr<ChaosPlan> InstallChaos(uint64_t seed, const ChaosOptions& options = {});

  // Runs everything to completion (or deadline) and reports.
  StatusOr<RunReport> Run(SimTime deadline = kTimeInfinity);

  // Long-running service mode (src/core/steady_state.h): open-loop arrivals
  // for options.duration simulated seconds with admission control, the
  // cycle-deadline watchdog, and bounded-memory retirement, then an optional
  // drain. Pre-submitted jobs and injected faults participate normally.
  StatusOr<SteadyStateReport> RunSteadyState(const SteadyStateOptions& options);

  const Topology& topology() const { return topo_; }
  const WanRoutingTable& routing() const { return routing_; }
  BdsController* mutable_controller() { return controller_.get(); }
  const BdsOptions& options() const { return options_; }

 private:
  BdsService(Topology topo, WanRoutingTable routing, BdsOptions options);

  Topology topo_;
  WanRoutingTable routing_;
  BdsOptions options_;
  std::unique_ptr<BackgroundTrafficModel> background_;
  std::unique_ptr<BdsController> controller_;
  JobId next_job_id_ = 0;
};

// MulticastStrategy adapter so BDS slots into the baseline comparison
// harness (Table 3, Fig 9).
class BdsStrategy : public MulticastStrategy {
 public:
  BdsStrategy() : BdsStrategy(BdsOptions{}) {}
  explicit BdsStrategy(BdsOptions options) : options_(options) {}

  std::string name() const override { return "bds"; }
  StatusOr<MulticastRunResult> Run(const Topology& topo, const WanRoutingTable& routing,
                                   const MulticastJob& job, uint64_t seed,
                                   SimTime deadline) override;

 private:
  BdsOptions options_;
};

}  // namespace bds

#endif  // BDS_SRC_CORE_SERVICE_H_
