// User-facing configuration for a BDS deployment. Defaults follow §5.4: 2 MB
// blocks, 3-second update cycles, 20 % of link capacity reserved for
// latency-sensitive traffic (i.e. an 80 % safety threshold).

#ifndef BDS_SRC_CORE_OPTIONS_H_
#define BDS_SRC_CORE_OPTIONS_H_

#include "src/common/types.h"
#include "src/control/controller.h"

namespace bds {

struct BdsOptions {
  // Data plane.
  Bytes block_size = MB(2.0);
  SimTime cycle_length = 3.0;

  // Bandwidth separation (§5.2).
  double safety_threshold = 0.8;
  Rate bulk_rate_cap = 0.0;  // Per-WAN-link hard cap; <= 0 disables.

  // Decision algorithm (§4).
  int max_wan_routes = 3;
  double fptas_epsilon = 0.1;
  bool merge_subtasks = true;
  bool use_exact_lp = false;  // "Standard LP" ablation mode.
  int64_t max_deliveries_per_cycle = 0;
  // Fleet-scale controller parallelism: worker threads for the per-subtask /
  // per-candidate passes, and shards for the selection queue + per-group
  // FPTAS (DESIGN.md "Sharded controller"). Either value may be raised
  // without changing any decision bit.
  int num_threads = 1;
  int num_shards = 1;
  // Cross-cycle incrementality (DESIGN.md §9.7). warm_start seeds each
  // cycle's routing FPTAS from the previous cycle's converged flows;
  // split_contended splits giant contended commodity groups across shards.
  // Both are relaxed-parity knobs: decisions stay feasible and
  // deterministic for any thread/shard count, but are no longer
  // bitwise-equal to the cold/unsharded solve. Off by default.
  bool warm_start = false;
  bool split_contended = false;

  // Control plane.
  DcId controller_dc = 0;
  int controller_replicas = 3;
  bool measure_delays = true;
  // Charge the control-plane feedback loop against each cycle (Fig 12c).
  bool model_decision_latency = false;
  int fallback_visibility = 3;  // Decentralized-fallback source visibility.

  // Check hard invariants (link rates within faulted capacity) every cycle
  // and record the worst violation in the report. Off by default; the chaos
  // soak turns it on.
  bool validate_invariants = false;

  uint64_t seed = 1;
};

// Expands the compact user options into the controller's full option set.
ControllerOptions ToControllerOptions(const BdsOptions& options);

}  // namespace bds

#endif  // BDS_SRC_CORE_OPTIONS_H_
