// Engine-backed baseline strategies:
//
//  * GingkoStrategy — Baidu's receiver-driven decentralized overlay (§2.3):
//    per-request random source choice among a partially visible holder set.
//  * BulletStrategy — Bullet's RanSub mesh [26]: epoch-based random peer
//    subsets, several concurrent fetches of disjoint blocks.
//  * DirectStrategy — no overlay at all: every destination pulls every block
//    from the origin DC (Figure 3(b)).

#ifndef BDS_SRC_BASELINES_GINGKO_H_
#define BDS_SRC_BASELINES_GINGKO_H_

#include <string>

#include "src/baselines/decentralized_engine.h"
#include "src/baselines/strategy.h"

namespace bds {

// Shared implementation: run one job through a DecentralizedEngine
// configured by `options`.
StatusOr<MulticastRunResult> RunDecentralized(const Topology& topo,
                                              const WanRoutingTable& routing,
                                              const MulticastJob& job,
                                              DecentralizedEngine::Options options,
                                              SimTime deadline);

class GingkoStrategy : public MulticastStrategy {
 public:
  struct Options {
    int visibility = 3;
    int concurrent_downloads = 1;
    // Receivers re-pick their source only every `sticky_blocks` blocks
    // (chunk/stage granularity, as in the deployed system).
    int sticky_blocks = 24;
    // Fixed overlay: each receiver sees ~1/8 of the participants.
    double neighbor_fraction = 0.125;
    // Serial uploads: one receiver served at a time per source.
    int upload_slots = 1;
  };
  GingkoStrategy() : GingkoStrategy(Options{}) {}
  explicit GingkoStrategy(Options options) : options_(options) {}

  std::string name() const override { return "gingko"; }
  StatusOr<MulticastRunResult> Run(const Topology& topo, const WanRoutingTable& routing,
                                   const MulticastJob& job, uint64_t seed,
                                   SimTime deadline) override;

 private:
  Options options_;
};

class BulletStrategy : public MulticastStrategy {
 public:
  struct Options {
    int visibility = 4;
    int concurrent_downloads = 3;
    SimTime epoch = 10.0;  // RanSub distribution period.
    // RanSub re-draws a fresh random subset every epoch.
    double neighbor_fraction = 0.15;
    // Bullet serves a few parallel uploads per node.
    int upload_slots = 3;
  };
  BulletStrategy() : BulletStrategy(Options{}) {}
  explicit BulletStrategy(Options options) : options_(options) {}

  std::string name() const override { return "bullet"; }
  StatusOr<MulticastRunResult> Run(const Topology& topo, const WanRoutingTable& routing,
                                   const MulticastJob& job, uint64_t seed,
                                   SimTime deadline) override;

 private:
  Options options_;
};

class DirectStrategy : public MulticastStrategy {
 public:
  std::string name() const override { return "direct"; }
  StatusOr<MulticastRunResult> Run(const Topology& topo, const WanRoutingTable& routing,
                                   const MulticastJob& job, uint64_t seed,
                                   SimTime deadline) override;
};

}  // namespace bds

#endif  // BDS_SRC_BASELINES_GINGKO_H_
