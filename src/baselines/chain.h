// Simple chain replication (Figure 3(c)): destination DCs form a fixed
// chain; each block is forwarded hop-by-hop with per-block store-and-forward
// pipelining. Better than direct replication (the relay's spare bandwidth is
// used) but blind to the bottleneck-disjoint paths BDS exploits.

#ifndef BDS_SRC_BASELINES_CHAIN_H_
#define BDS_SRC_BASELINES_CHAIN_H_

#include <string>

#include "src/baselines/strategy.h"

namespace bds {

class ChainStrategy : public MulticastStrategy {
 public:
  std::string name() const override { return "chain"; }

  // Chain order is the job's dest_dcs order.
  StatusOr<MulticastRunResult> Run(const Topology& topo, const WanRoutingTable& routing,
                                   const MulticastJob& job, uint64_t seed,
                                   SimTime deadline) override;
};

}  // namespace bds

#endif  // BDS_SRC_BASELINES_CHAIN_H_
