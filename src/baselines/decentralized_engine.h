// Receiver-driven decentralized dissemination engine.
//
// This is the protocol class the paper's §2.3 describes for Gingko (and that
// BDS agents fall back to when the controller is unreachable, §5.3): each
// destination server independently pulls its missing blocks from whichever
// holders it can see. The crucial limitation is *partial visibility* — a
// receiver only knows a random subset of the block's holders — which is what
// produces hotspots and the 4-5x gap to optimal (Fig 5).
//
// Option knobs turn the same engine into the Bullet-style mesh (periodic
// random peer resampling, several concurrent fetches) and into naive direct
// replication (origin-only sources).

#ifndef BDS_SRC_BASELINES_DECENTRALIZED_ENGINE_H_
#define BDS_SRC_BASELINES_DECENTRALIZED_ENGINE_H_

#include <unordered_map>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/types.h"
#include "src/scheduler/replica_state.h"
#include "src/simulator/network_simulator.h"
#include "src/topology/routing.h"
#include "src/topology/topology.h"

namespace bds {

class DecentralizedEngine {
 public:
  struct Options {
    // Holders a receiver can see per request; <= 0 means full visibility.
    int visibility = 4;
    // Concurrent downloads per destination server.
    int concurrent_downloads = 1;
    // Re-draw the visible holder subset only every `resample_period` seconds
    // (Bullet-style epochs); 0 re-draws on every request (Gingko-style).
    SimTime resample_period = 0.0;
    // Restrict sources to servers in the job's origin DC (direct
    // replication).
    bool origin_only = false;
    // Request queue order: true = random (decentralized systems), false =
    // sequential block order.
    bool randomize_order = true;
    // A receiver sticks with its chosen source for this many consecutive
    // blocks (chunk-granularity source selection, as deployed receiver-
    // driven systems do). This is what turns a momentarily bad random pick
    // into a long straggler (Fig 5's tail). 0 = re-pick every block.
    int sticky_blocks = 0;
    // Fixed overlay neighbor set: each receiver may only pull from this
    // fraction of the participants (at least 3 servers), drawn once at
    // Activate() and re-drawn each `resample_period` for RanSub-style
    // meshes. This is the paper's "individual servers only see a subset of
    // available data sources" (§2.3): while none of a receiver's neighbors
    // hold a block, the receiver waits. 0 = global view.
    double neighbor_fraction = 0.0;
    // After this many failed attempts on one block, the receiver escalates
    // past its neighbor set (out-of-band discovery), so runs never wedge.
    int stall_escalation = 20;
    // Concurrent uploads a source serves; further requests wait in the
    // source's queue while the receiver sits idle. This serial service is
    // what turns an unlucky random source choice into a long wait — the
    // dominant decentralized inefficiency of §2.3. 0 = unlimited
    // (fair-share trickling to every requester).
    int upload_slots = 0;
    uint64_t seed = 1;
  };

  // tag2 value marking flows owned by a DecentralizedEngine.
  static constexpr int64_t kFlowOwnerTag = 0x0DECE;

  DecentralizedEngine(const Topology* topo, const WanRoutingTable* routing,
                      NetworkSimulator* sim, ReplicaState* state, Options options);

  // Builds per-server want-queues from the current replica state and starts
  // initial downloads. Call once, or again after failures change the state.
  void Activate();

  // Stops launching new downloads (the centralized controller took over).
  void Deactivate() { active_ = false; }
  bool active() const { return active_; }

  // Routes a completed flow back into the engine. Returns true if the flow
  // belonged to this engine (callers with mixed flow owners dispatch on
  // FlowRecord::tag2). Fires `on_delivery` before starting follow-up work.
  using DeliveryCallback = std::function<void(JobId, int64_t block, ServerId src, ServerId dst)>;
  bool OnFlowComplete(const FlowRecord& record);

  void SetDeliveryCallback(DeliveryCallback cb) { on_delivery_ = std::move(cb); }

  // Cancels every in-flight download to or from `server` and requeues the
  // affected blocks (server/agent failure, §5.3 item 2).
  void HandleServerFailure(ServerId server);

  // Cancels every in-flight download crossing `link` (a hard link-down) and
  // requeues the affected blocks; receivers re-pick sources immediately.
  // Returns the number of downloads killed.
  int HandleLinkFault(LinkId link);

  // Checksum verification hook: when set and it returns true for a finished
  // download, the block is discarded (not credited) and requeued.
  using CorruptionHook = std::function<bool(JobId, int64_t block)>;
  void SetCorruptionHook(CorruptionHook hook) { corruption_hook_ = std::move(hook); }

  // Periodic kick: retries receivers whose queues stalled because no visible
  // neighbor held their blocks yet, and re-draws RanSub neighbor sets when
  // the epoch rolled over. Call once per simulated second or cycle.
  void Tick();

  int64_t downloads_started() const { return downloads_started_; }

 private:
  struct Want {
    JobId job;
    int64_t block;
    int retries = 0;
  };
  struct Transfer {
    JobId job;
    int64_t block;
    ServerId src;
    ServerId dst;
    FlowId flow = kInvalidFlow;
  };

  // Starts the next download(s) for `server` until its concurrency budget is
  // exhausted or its queue runs dry.
  void PumpServer(ServerId server);

  // Picks a source holder for (job, block) under the visibility rule;
  // kInvalidServer when none available.
  ServerId PickSource(JobId job, int64_t block, ServerId dst, bool ignore_neighbors);

  const Topology* topo_;
  const WanRoutingTable* routing_;
  NetworkSimulator* sim_;
  ReplicaState* state_;
  Options options_;
  Rng rng_;
  bool active_ = false;

  std::unordered_map<ServerId, std::vector<Want>> queue_;
  std::unordered_map<ServerId, int> in_flight_;
  // Sticky source state per receiver: (source, blocks left on it).
  std::unordered_map<ServerId, std::pair<ServerId, int>> sticky_;

  // Upload-slot bookkeeping (upload_slots > 0): active uploads per source
  // and the requests queued behind them.
  struct QueuedRequest {
    Want want;
    ServerId dst;
  };
  std::unordered_map<ServerId, int> active_uploads_;
  std::unordered_map<ServerId, std::vector<QueuedRequest>> upload_queue_;

  // Starts the transfer or queues it at the source. Returns false only on
  // hard errors (no path); the receiver's download slot stays committed
  // either way.
  bool StartOrQueue(const Want& want, ServerId src, ServerId dst);
  void ServeNextUpload(ServerId src);
  std::unordered_map<int64_t, Transfer> transfers_;  // By flow tag.
  int64_t next_tag_ = 0;
  int64_t downloads_started_ = 0;

  // Bullet-style epoch cache: per (server), the visible holder subset drawn
  // this epoch, per job/block hash bucket.
  std::unordered_map<ServerId, std::pair<SimTime, uint64_t>> epoch_;

  // Fixed neighbor sets (neighbor_set_size > 0) and the participant universe
  // they are drawn from.
  std::vector<ServerId> participants_;
  std::unordered_map<ServerId, std::vector<ServerId>> neighbors_;
  SimTime neighbors_drawn_at_ = -1.0;

  void DrawNeighborSets();
  bool IsNeighbor(ServerId receiver, ServerId candidate);

  DeliveryCallback on_delivery_;
  CorruptionHook corruption_hook_;
};

}  // namespace bds

#endif  // BDS_SRC_BASELINES_DECENTRALIZED_ENGINE_H_
