// Common interface for multicast strategies compared in the evaluation
// (§6.1): BDS itself, Gingko, Bullet, Akamai's layered overlay, plus the
// didactic direct / chain-replication strategies of Figure 3.

#ifndef BDS_SRC_BASELINES_STRATEGY_H_
#define BDS_SRC_BASELINES_STRATEGY_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/scheduler/replica_state.h"
#include "src/simulator/network_simulator.h"
#include "src/topology/routing.h"
#include "src/topology/topology.h"
#include "src/workload/job.h"

namespace bds {

struct MulticastRunResult {
  bool completed = false;
  // Time until every destination DC holds a full copy; equals the deadline
  // when incomplete.
  SimTime completion_time = 0.0;
  // Per destination server: when its shard finished arriving.
  std::vector<std::pair<ServerId, SimTime>> server_completion;
  std::unordered_map<DcId, SimTime> dc_completion;
  int64_t deliveries = 0;

  // Completion-time samples in minutes, for CDF reporting.
  std::vector<double> ServerCompletionMinutes() const;
};

class MulticastStrategy {
 public:
  virtual ~MulticastStrategy() = default;
  virtual std::string name() const = 0;

  // Runs `job` to completion (or `deadline`) on a fresh simulator.
  virtual StatusOr<MulticastRunResult> Run(const Topology& topo, const WanRoutingTable& routing,
                                           const MulticastJob& job, uint64_t seed,
                                           SimTime deadline) = 0;
};

// Tracks per-server and per-DC completion as deliveries land. Shared by all
// strategy implementations.
class CompletionTracker {
 public:
  CompletionTracker(const Topology* topo, ReplicaState* state);

  // Call after state->NoteDelivery(...) for the delivery that just landed.
  void OnDelivery(ServerId dest_server, SimTime now);

  // Finalizes and extracts the result. `deadline_hit` marks incompleteness.
  MulticastRunResult Finish(SimTime now, bool completed);

  int64_t deliveries() const { return deliveries_; }

 private:
  const Topology* topo_;
  ReplicaState* state_;
  std::unordered_map<ServerId, SimTime> server_done_;
  std::unordered_map<DcId, SimTime> dc_done_;
  std::unordered_map<DcId, int64_t> dc_outstanding_servers_;
  int64_t deliveries_ = 0;
};

}  // namespace bds

#endif  // BDS_SRC_BASELINES_STRATEGY_H_
