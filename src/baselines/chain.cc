#include "src/baselines/chain.h"

#include <deque>
#include <unordered_map>
#include <vector>

#include "src/simulator/network_simulator.h"
#include "src/topology/path.h"

namespace bds {

StatusOr<MulticastRunResult> ChainStrategy::Run(const Topology& topo,
                                                const WanRoutingTable& routing,
                                                const MulticastJob& job, uint64_t seed,
                                                SimTime deadline) {
  (void)seed;  // The chain is deterministic.
  BDS_RETURN_IF_ERROR(job.Validate(topo.num_dcs()));
  NetworkSimulator sim(&topo);
  ReplicaState state(&topo);
  BDS_RETURN_IF_ERROR(state.AddJob(job));
  CompletionTracker tracker(&topo, &state);

  // hop_of[dc] = position in the chain (0 = first destination).
  std::unordered_map<DcId, size_t> hop_of;
  for (size_t i = 0; i < job.dest_dcs.size(); ++i) {
    hop_of[job.dest_dcs[i]] = i;
  }

  // Per-server outgoing send queue (block, next-hop destination server):
  // one flow at a time per sender keeps blocks pipelining down the chain.
  struct Send {
    int64_t block;
    ServerId dst;
  };
  std::unordered_map<ServerId, std::deque<Send>> out_queue;
  std::unordered_map<ServerId, bool> sending;
  std::unordered_map<int64_t, std::tuple<int64_t, ServerId, ServerId>> in_flight;  // tag
  int64_t next_tag = 0;
  Status callback_status = Status::Ok();

  std::function<void(ServerId)> pump = [&](ServerId src) {
    if (!callback_status.ok()) {
      return;
    }
    if (sending[src]) {
      return;
    }
    auto& q = out_queue[src];
    while (!q.empty()) {
      Send s = q.front();
      q.pop_front();
      if (state.ServerHasBlock(job.id, s.block, s.dst)) {
        continue;  // Next hop already has it.
      }
      auto path = MakeServerPath(topo, routing, src, s.dst);
      if (!path.ok()) {
        callback_status = path.status();
        return;
      }
      int64_t tag = next_tag++;
      auto flow = sim.StartFlow(path->links, job.BlockSizeOf(s.block), 0.0, tag, /*tag2=*/7);
      if (!flow.ok()) {
        callback_status = flow.status();
        return;
      }
      in_flight[tag] = {s.block, src, s.dst};
      sending[src] = true;
      return;
    }
  };

  auto enqueue_forward = [&](int64_t block, ServerId holder, size_t hop) {
    if (hop >= job.dest_dcs.size()) {
      return;  // End of chain.
    }
    DcId next_dc = job.dest_dcs[hop];
    ServerId next_server = state.AssignedServer(job.id, block, next_dc);
    out_queue[holder].push_back(Send{block, next_server});
    pump(holder);
  };

  sim.SetCompletionCallback([&](const FlowRecord& rec) {
    auto it = in_flight.find(rec.tag);
    if (it == in_flight.end()) {
      return;
    }
    auto [block, src, dst] = it->second;
    in_flight.erase(it);
    sending[src] = false;
    (void)state.NoteDelivery(job.id, block, src, dst);
    tracker.OnDelivery(dst, sim.now());
    // Forward to the next hop in the chain.
    size_t hop = hop_of[topo.server(dst).dc];
    enqueue_forward(block, dst, hop + 1);
    pump(src);
  });

  // Seed: origin shard holders send their blocks to the first chain hop.
  for (int64_t b = 0; b < job.num_blocks(); ++b) {
    ServerId holder = state.Holders(job.id, b).front();
    enqueue_forward(b, holder, 0);
  }
  auto end = sim.RunUntilIdle(deadline);
  if (!end.ok()) {
    return end.status();
  }
  BDS_RETURN_IF_ERROR(callback_status);
  return tracker.Finish(*end, state.AllComplete());
}

}  // namespace bds
