// Akamai-style 3-layer overlay multicast [9] (§6.1.1, §7).
//
// Layer 1: the origin DC's servers. Layer 2: a fixed set of reflector
// servers in each destination DC. Layer 3: the destination (edge) servers.
// Blocks travel strictly in sequence (the design target is live streaming),
// source -> reflector -> edge; the rigid layering and sequential order are
// exactly what BDS's finer-grained, order-free allocation beats (§7).

#ifndef BDS_SRC_BASELINES_AKAMAI_H_
#define BDS_SRC_BASELINES_AKAMAI_H_

#include <string>

#include "src/baselines/strategy.h"

namespace bds {

class AkamaiStrategy : public MulticastStrategy {
 public:
  struct Options {
    // Reflector servers per destination DC; <= 0 picks ~25 % of the DC's
    // servers (at least 1).
    int reflectors_per_dc = 0;
    // Blocks a reflector may have in flight from the source. Order is still
    // sequential (live-streaming constraint), but a small window keeps the
    // stream pipelined across block boundaries.
    int stream_window = 4;
  };
  AkamaiStrategy() : AkamaiStrategy(Options{}) {}
  explicit AkamaiStrategy(Options options) : options_(options) {}

  std::string name() const override { return "akamai"; }
  StatusOr<MulticastRunResult> Run(const Topology& topo, const WanRoutingTable& routing,
                                   const MulticastJob& job, uint64_t seed,
                                   SimTime deadline) override;

 private:
  Options options_;
};

}  // namespace bds

#endif  // BDS_SRC_BASELINES_AKAMAI_H_
