#include "src/baselines/gingko.h"

#include "src/simulator/network_simulator.h"

namespace bds {

StatusOr<MulticastRunResult> RunDecentralized(const Topology& topo,
                                              const WanRoutingTable& routing,
                                              const MulticastJob& job,
                                              DecentralizedEngine::Options options,
                                              SimTime deadline) {
  BDS_RETURN_IF_ERROR(job.Validate(topo.num_dcs()));
  NetworkSimulator sim(&topo);
  ReplicaState state(&topo);
  BDS_RETURN_IF_ERROR(state.AddJob(job));
  CompletionTracker tracker(&topo, &state);
  DecentralizedEngine engine(&topo, &routing, &sim, &state, options);
  engine.SetDeliveryCallback([&](JobId, int64_t, ServerId, ServerId dst) {
    tracker.OnDelivery(dst, sim.now());
  });
  sim.SetCompletionCallback([&](const FlowRecord& r) { engine.OnFlowComplete(r); });
  engine.Activate();

  // Tick-driven run: receivers whose neighbors do not hold their blocks yet
  // stall and retry every tick, exactly like periodic re-requests.
  const SimTime kTick = 1.0;
  int64_t idle_ticks = 0;
  while (!state.AllComplete() && sim.now() < deadline) {
    int64_t pending_before = state.num_pending();
    auto end = sim.RunUntilIdle(std::min(deadline, sim.now() + kTick));
    if (!end.ok()) {
      return end.status();
    }
    if (sim.now() < deadline && !state.AllComplete()) {
      BDS_RETURN_IF_ERROR(sim.AdvanceTo(std::min(deadline, sim.now() + kTick)));
    }
    engine.Tick();
    idle_ticks = state.num_pending() == pending_before ? idle_ticks + 1 : 0;
    if (idle_ticks > 10 * options.stall_escalation + 1000) {
      break;  // Wedged beyond any escalation path; report incomplete.
    }
  }
  return tracker.Finish(sim.now(), state.AllComplete());
}

StatusOr<MulticastRunResult> GingkoStrategy::Run(const Topology& topo,
                                                 const WanRoutingTable& routing,
                                                 const MulticastJob& job, uint64_t seed,
                                                 SimTime deadline) {
  DecentralizedEngine::Options opt;
  opt.visibility = options_.visibility;
  opt.concurrent_downloads = options_.concurrent_downloads;
  opt.resample_period = 0.0;  // Fixed overlay, per-request source choice.
  opt.sticky_blocks = options_.sticky_blocks;
  opt.neighbor_fraction = options_.neighbor_fraction;
  opt.upload_slots = options_.upload_slots;
  opt.seed = seed;
  return RunDecentralized(topo, routing, job, opt, deadline);
}

StatusOr<MulticastRunResult> BulletStrategy::Run(const Topology& topo,
                                                 const WanRoutingTable& routing,
                                                 const MulticastJob& job, uint64_t seed,
                                                 SimTime deadline) {
  DecentralizedEngine::Options opt;
  opt.visibility = options_.visibility;
  opt.concurrent_downloads = options_.concurrent_downloads;
  opt.resample_period = options_.epoch;
  opt.neighbor_fraction = options_.neighbor_fraction;
  opt.upload_slots = options_.upload_slots;
  opt.seed = seed;
  return RunDecentralized(topo, routing, job, opt, deadline);
}

StatusOr<MulticastRunResult> DirectStrategy::Run(const Topology& topo,
                                                 const WanRoutingTable& routing,
                                                 const MulticastJob& job, uint64_t seed,
                                                 SimTime deadline) {
  DecentralizedEngine::Options opt;
  opt.visibility = 0;  // Full visibility of the origin's holders.
  opt.concurrent_downloads = 1;
  opt.origin_only = true;
  opt.randomize_order = false;
  opt.seed = seed;
  return RunDecentralized(topo, routing, job, opt, deadline);
}

}  // namespace bds
