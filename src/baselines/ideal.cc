#include "src/baselines/ideal.h"

#include <algorithm>

#include "src/common/status.h"
#include "src/scheduler/replica_state.h"

namespace bds {

SimTime IdealCompletionBound(const Topology& topo, const MulticastJob& job) {
  BDS_CHECK(job.Validate(topo.num_dcs()).ok());
  SimTime bound = 0.0;

  // Source egress: every byte leaves the origin DC at least once (relays can
  // take over afterwards, but the first copy must come from the source).
  Rate src_up = 0.0;
  for (ServerId s : topo.ServersIn(job.source_dc)) {
    src_up += topo.server(s).up_capacity;
  }
  if (src_up > 0.0) {
    bound = std::max(bound, job.total_bytes / src_up);
  }

  int64_t n = job.num_blocks();
  for (DcId d : job.dest_dcs) {
    const auto& servers = topo.ServersIn(d);
    // Aggregate ingest of the DC's servers.
    Rate down = 0.0;
    for (ServerId s : servers) {
      down += topo.server(s).down_capacity;
    }
    if (down > 0.0) {
      bound = std::max(bound, job.total_bytes / down);
    }
    // Aggregate WAN ingress (an upper bound on the min-cut into the DC).
    Rate wan_in = 0.0;
    for (const Link& l : topo.links()) {
      if (l.type == LinkType::kWan && l.dst_dc == d) {
        wan_in += l.capacity;
      }
    }
    if (wan_in > 0.0) {
      bound = std::max(bound, job.total_bytes / wan_in);
    }
    // Per-server shard bound: each server must ingest the blocks the
    // placement rule assigns to it.
    std::vector<Bytes> shard(servers.size(), 0.0);
    for (int64_t b = 0; b < n; ++b) {
      shard[ShardIndex(job.id, b, d, servers.size())] += job.BlockSizeOf(b);
    }
    for (size_t i = 0; i < servers.size(); ++i) {
      Rate r = topo.server(servers[i]).down_capacity;
      if (r > 0.0 && shard[i] > 0.0) {
        bound = std::max(bound, shard[i] / r);
      }
    }
  }
  return bound;
}

double AppendixBalancedTime(int64_t num_blocks, int m, int k, Bytes rho, Rate r) {
  BDS_CHECK(m > k && k >= 1 && r > 0.0);
  double v = static_cast<double>(num_blocks) * static_cast<double>(m - k) * rho;
  return static_cast<double>(m - k) * v / (static_cast<double>(k) * r);
}

double AppendixImbalancedTime(int64_t num_blocks, int m, int k1, int k2, Bytes rho, Rate r) {
  BDS_CHECK(m > k1 && k1 >= 1 && k2 > k1 && r > 0.0);
  double half = static_cast<double>(num_blocks) / 2.0;
  double v = half * static_cast<double>(m - k1) * rho + half * static_cast<double>(m - k2) * rho;
  return static_cast<double>(m - k1) * v / (static_cast<double>(k1) * r);
}

}  // namespace bds
