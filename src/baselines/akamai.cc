#include "src/baselines/akamai.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "src/simulator/network_simulator.h"
#include "src/topology/path.h"

namespace bds {

StatusOr<MulticastRunResult> AkamaiStrategy::Run(const Topology& topo,
                                                 const WanRoutingTable& routing,
                                                 const MulticastJob& job, uint64_t seed,
                                                 SimTime deadline) {
  (void)seed;  // Deterministic layered tree; no randomness needed.
  BDS_RETURN_IF_ERROR(job.Validate(topo.num_dcs()));
  NetworkSimulator sim(&topo);
  ReplicaState state(&topo);
  BDS_RETURN_IF_ERROR(state.AddJob(job));
  CompletionTracker tracker(&topo, &state);

  const int64_t num_blocks = job.num_blocks();

  // Reflector sets per destination DC.
  std::unordered_map<DcId, std::vector<ServerId>> reflectors;
  for (DcId d : job.dest_dcs) {
    const auto& servers = topo.ServersIn(d);
    int r = options_.reflectors_per_dc > 0
                ? options_.reflectors_per_dc
                : std::max<int>(1, static_cast<int>(servers.size()) / 4);
    r = std::min<int>(r, static_cast<int>(servers.size()));
    reflectors[d].assign(servers.begin(), servers.begin() + r);
  }

  // Per-reflector sequential feed from the origin: blocks b with
  // b % R == reflector index, in ascending order.
  struct Feed {
    DcId dc;
    ServerId reflector;
    std::vector<int64_t> blocks;  // Ascending; consumed from the front.
    size_t next_start = 0;        // Next block to request.
    size_t next_finish = 0;       // Next block expected to land (in order).
  };
  std::vector<Feed> feeds;
  for (DcId d : job.dest_dcs) {
    const auto& refl = reflectors[d];
    int64_t r_count = static_cast<int64_t>(refl.size());
    for (int64_t r = 0; r < r_count; ++r) {
      Feed f;
      f.dc = d;
      f.reflector = refl[static_cast<size_t>(r)];
      for (int64_t b = r; b < num_blocks; b += r_count) {
        f.blocks.push_back(b);
      }
      if (!f.blocks.empty()) {
        feeds.push_back(std::move(f));
      }
    }
  }

  // Flow tags: tag = (feed index) for stage-1, or ~(transfer idx) for
  // stage-2 fan-out.
  struct Stage2 {
    int64_t block;
    ServerId src;
    ServerId dst;
  };
  std::vector<Stage2> stage2;

  const size_t window = static_cast<size_t>(std::max(1, options_.stream_window));
  auto start_feed_next = [&](size_t feed_idx) -> Status {
    Feed& f = feeds[feed_idx];
    // Keep up to `window` sequential blocks in flight.
    while (f.next_start < f.blocks.size() && f.next_start < f.next_finish + window) {
      int64_t b = f.blocks[f.next_start];
      const auto& holders = state.Holders(job.id, b);
      BDS_CHECK(!holders.empty());
      ServerId src = holders.front();  // The origin shard holder.
      auto path = MakeServerPath(topo, routing, src, f.reflector);
      if (!path.ok()) {
        return path.status();
      }
      auto flow = sim.StartFlow(path->links, job.BlockSizeOf(b), 0.0,
                                static_cast<int64_t>(feed_idx), /*tag2=*/1);
      if (!flow.ok()) {
        return flow.status();
      }
      ++f.next_start;
    }
    return Status::Ok();
  };

  Status callback_status = Status::Ok();
  sim.SetCompletionCallback([&](const FlowRecord& rec) {
    if (!callback_status.ok()) {
      return;
    }
    if (rec.tag2 == 1) {
      // Stage 1 complete: blocks land in order within a feed.
      Feed& f = feeds[static_cast<size_t>(rec.tag)];
      int64_t b = f.blocks[f.next_finish];
      ++f.next_finish;
      const auto& origin_holders = state.Holders(job.id, b);
      ServerId src = origin_holders.empty() ? kInvalidServer : origin_holders.front();
      (void)state.NoteDelivery(job.id, b, src, f.reflector);
      tracker.OnDelivery(f.reflector, sim.now());

      // Fan out to the assigned edge server (if not the reflector itself).
      ServerId edge = state.AssignedServer(job.id, b, f.dc);
      if (edge != f.reflector && !state.ServerHasBlock(job.id, b, edge)) {
        auto path = MakeServerPath(topo, routing, f.reflector, edge);
        if (path.ok()) {
          stage2.push_back(Stage2{b, f.reflector, edge});
          auto flow = sim.StartFlow(path->links, job.BlockSizeOf(b), 0.0,
                                    static_cast<int64_t>(stage2.size()) - 1, /*tag2=*/2);
          if (!flow.ok()) {
            callback_status = flow.status();
            return;
          }
        } else {
          callback_status = path.status();
          return;
        }
      }
      // Sequential order: fetch the next block only now.
      Status s = start_feed_next(static_cast<size_t>(rec.tag));
      if (!s.ok()) {
        callback_status = s;
      }
    } else if (rec.tag2 == 2) {
      const Stage2& t = stage2[static_cast<size_t>(rec.tag)];
      (void)state.NoteDelivery(job.id, t.block, t.src, t.dst);
      tracker.OnDelivery(t.dst, sim.now());
    }
  });

  for (size_t i = 0; i < feeds.size(); ++i) {
    BDS_RETURN_IF_ERROR(start_feed_next(i));
  }
  auto end = sim.RunUntilIdle(deadline);
  if (!end.ok()) {
    return end.status();
  }
  BDS_RETURN_IF_ERROR(callback_status);
  return tracker.Finish(*end, state.AllComplete());
}

}  // namespace bds
