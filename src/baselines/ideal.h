// Analytic lower bounds on multicast completion time, used as the "ideal
// solution" curve in Fig 5 and as the theoretical model of the paper's
// appendix (balanced vs. imbalanced replica counts).

#ifndef BDS_SRC_BASELINES_IDEAL_H_
#define BDS_SRC_BASELINES_IDEAL_H_

#include "src/common/types.h"
#include "src/topology/topology.h"
#include "src/workload/job.h"

namespace bds {

// A lower bound on any strategy's completion time for `job` on `topo`:
// the maximum of
//   * per destination DC: bytes / aggregate server download capacity, and
//     bytes / aggregate WAN ingress capacity;
//   * source DC: bytes / aggregate server upload capacity (every byte must
//     leave the origin at least once);
//   * per destination server: its shard bytes / its download capacity.
SimTime IdealCompletionBound(const Topology& topo, const MulticastJob& job);

// Appendix formulas. N blocks of size rho must reach m destination DCs;
// every server has up/down rate R (R = min(Rup, Rdown)); inter-DC links are
// not the bottleneck.
//
// Balanced case A: every block has k replicas ->
//   t_A = (m - k) * V / (k * R), with V = N * (m - k) * rho.
double AppendixBalancedTime(int64_t num_blocks, int m, int k, Bytes rho, Rate r);

// Imbalanced case B: half the blocks have k1 replicas, half k2 (k1 < k2) ->
//   t_B = (m - k1) * V / (k1 * R) with V = N/2 (m-k1) rho + N/2 (m-k2) rho.
double AppendixImbalancedTime(int64_t num_blocks, int m, int k1, int k2, Bytes rho, Rate r);

}  // namespace bds

#endif  // BDS_SRC_BASELINES_IDEAL_H_
