#include "src/baselines/decentralized_engine.h"

#include <algorithm>
#include <unordered_set>

#include "src/topology/path.h"

namespace bds {

DecentralizedEngine::DecentralizedEngine(const Topology* topo, const WanRoutingTable* routing,
                                         NetworkSimulator* sim, ReplicaState* state,
                                         Options options)
    : topo_(topo),
      routing_(routing),
      sim_(sim),
      state_(state),
      options_(options),
      rng_(options.seed) {
  BDS_CHECK(topo != nullptr && routing != nullptr && sim != nullptr && state != nullptr);
  BDS_CHECK(options_.concurrent_downloads >= 1);
}

void DecentralizedEngine::DrawNeighborSets() {
  neighbors_.clear();
  // Participant universe: every destination server plus every current
  // holder's server (the origin DC's shard holders).
  std::unordered_set<ServerId> universe;
  for (ServerId s : state_->AllDestinationServers()) {
    universe.insert(s);
  }
  for (JobId job : state_->job_ids()) {
    const MulticastJob* j = state_->FindJob(job);
    for (ServerId s : topo_->ServersIn(j->source_dc)) {
      universe.insert(s);
    }
  }
  participants_.assign(universe.begin(), universe.end());
  std::sort(participants_.begin(), participants_.end());
  int set_size = options_.neighbor_fraction > 0.0
                     ? std::max(3, static_cast<int>(options_.neighbor_fraction *
                                                    static_cast<double>(participants_.size())))
                     : 0;
  if (set_size <= 0 || static_cast<int>(participants_.size()) <= set_size) {
    neighbors_drawn_at_ = sim_->now();
    return;  // Global view.
  }
  for (ServerId receiver : participants_) {
    auto picks =
        rng_.SampleWithoutReplacement(static_cast<int64_t>(participants_.size()), set_size);
    std::vector<ServerId>& set = neighbors_[receiver];
    set.reserve(picks.size());
    for (int64_t i : picks) {
      ServerId s = participants_[static_cast<size_t>(i)];
      if (s != receiver) {
        set.push_back(s);
      }
    }
    std::sort(set.begin(), set.end());
  }
  neighbors_drawn_at_ = sim_->now();
}

bool DecentralizedEngine::IsNeighbor(ServerId receiver, ServerId candidate) {
  if (options_.neighbor_fraction <= 0.0) {
    return true;
  }
  auto it = neighbors_.find(receiver);
  if (it == neighbors_.end()) {
    return true;  // Degenerate universe: everyone visible.
  }
  return std::binary_search(it->second.begin(), it->second.end(), candidate);
}

void DecentralizedEngine::Tick() {
  if (!active_) {
    return;
  }
  // RanSub-style neighbor refresh.
  if (options_.neighbor_fraction > 0.0 && options_.resample_period > 0.0 &&
      sim_->now() >= neighbors_drawn_at_ + options_.resample_period) {
    DrawNeighborSets();
  }
  // Re-pump every receiver with work but no active download (its queue
  // stalled earlier because no visible neighbor held the blocks).
  for (auto& [server, wants] : queue_) {
    if (!wants.empty() && in_flight_[server] < options_.concurrent_downloads) {
      PumpServer(server);
    }
  }
}

void DecentralizedEngine::Activate() {
  active_ = true;
  queue_.clear();
  DrawNeighborSets();
  for (const PendingDelivery& p : state_->PendingDeliveries()) {
    if (p.dest_server != kInvalidServer) {
      queue_[p.dest_server].push_back(Want{p.job, p.block});
    }
  }
  for (auto& [server, wants] : queue_) {
    if (options_.randomize_order) {
      rng_.Shuffle(wants);
    }
  }
  // Snapshot the keys: PumpServer mutates queue_ entries.
  std::vector<ServerId> servers;
  servers.reserve(queue_.size());
  for (const auto& [server, wants] : queue_) {
    servers.push_back(server);
  }
  for (ServerId s : servers) {
    PumpServer(s);
  }
}

ServerId DecentralizedEngine::PickSource(JobId job, int64_t block, ServerId dst,
                                         bool ignore_neighbors) {
  const std::vector<ServerId>& all = state_->Holders(job, block);
  const MulticastJob* j = state_->FindJob(job);
  if (j == nullptr) {
    return kInvalidServer;
  }
  // Sticky chunk-granularity selection: keep the previous source while it
  // still holds what we need and the chunk is not exhausted.
  if (options_.sticky_blocks > 0) {
    auto it = sticky_.find(dst);
    if (it != sticky_.end() && it->second.second > 0 &&
        state_->ServerHasBlock(job, block, it->second.first) && it->second.first != dst) {
      --it->second.second;
      return it->second.first;
    }
  }
  // Candidate pool after structural filters: not ourselves, origin-only if
  // configured, and within the receiver's fixed neighbor set.
  std::vector<ServerId> pool;
  pool.reserve(all.size());
  for (ServerId h : all) {
    if (h == dst) {
      continue;
    }
    if (options_.origin_only && topo_->server(h).dc != j->source_dc) {
      continue;
    }
    if (!ignore_neighbors && !IsNeighbor(dst, h)) {
      continue;
    }
    pool.push_back(h);
  }
  if (pool.empty()) {
    return kInvalidServer;
  }
  if (options_.visibility <= 0 || static_cast<int>(pool.size()) <= options_.visibility) {
    // Full visibility: uniform choice (still no load awareness — that is the
    // decentralized limitation).
    ServerId pick =
        pool[static_cast<size_t>(rng_.UniformInt(0, static_cast<int64_t>(pool.size()) - 1))];
    if (options_.sticky_blocks > 0) {
      sticky_[dst] = {pick, options_.sticky_blocks - 1};
    }
    return pick;
  }
  // Partial visibility. The salt fixing which subset this receiver can see
  // is either per-request (Gingko) or per-epoch (Bullet/RanSub).
  uint64_t salt;
  if (options_.resample_period > 0.0) {
    auto [it, inserted] = epoch_.try_emplace(dst, std::make_pair(-1.0, 0ULL));
    if (inserted || sim_->now() >= it->second.first + options_.resample_period) {
      it->second = {sim_->now(), rng_.NextUint64()};
    }
    salt = it->second.second;
  } else {
    salt = rng_.NextUint64();
  }
  // The visible subset: `visibility` pseudo-random picks; choose uniformly
  // among them.
  uint64_t h = salt ^ (static_cast<uint64_t>(block) * 0x9E3779B97F4A7C15ULL) ^
               (static_cast<uint64_t>(job) << 32);
  int slot = static_cast<int>(rng_.UniformInt(0, options_.visibility - 1));
  for (int i = 0; i <= slot; ++i) {
    h ^= h >> 33;
    h *= 0xFF51AFD7ED558CCDULL;
    h ^= h >> 33;
  }
  ServerId pick = pool[static_cast<size_t>(h % pool.size())];
  if (options_.sticky_blocks > 0) {
    sticky_[dst] = {pick, options_.sticky_blocks - 1};
  }
  return pick;
}

void DecentralizedEngine::PumpServer(ServerId server) {
  if (!active_) {
    return;
  }
  auto qit = queue_.find(server);
  if (qit == queue_.end()) {
    return;
  }
  std::vector<Want>& wants = qit->second;
  int& busy = in_flight_[server];
  size_t stall_guard = wants.size();  // Each want is inspected at most once per pump.
  while (busy < options_.concurrent_downloads && !wants.empty() && stall_guard-- > 0) {
    Want w = wants.back();
    wants.pop_back();
    if (state_->ServerHasBlock(w.job, w.block, server)) {
      continue;  // Already delivered (e.g. by the centralized controller).
    }
    bool escalate = w.retries >= options_.stall_escalation;
    ServerId src = PickSource(w.job, w.block, server, escalate);
    if (src == kInvalidServer) {
      ++w.retries;  // Retry later (Tick re-pumps stalled receivers).
      wants.insert(wants.begin(), w);
      continue;
    }
    if (!StartOrQueue(w, src, server)) {
      wants.insert(wants.begin(), w);
      continue;
    }
    ++busy;  // Committed: either transferring or waiting in the source queue.
  }
}

bool DecentralizedEngine::StartOrQueue(const Want& want, ServerId src, ServerId dst) {
  if (options_.upload_slots > 0 && active_uploads_[src] >= options_.upload_slots) {
    upload_queue_[src].push_back(QueuedRequest{want, dst});
    return true;  // The receiver idles in the source's queue.
  }
  auto path = MakeServerPath(*topo_, *routing_, src, dst, /*route_index=*/0);
  if (!path.ok()) {
    return false;
  }
  const MulticastJob* job = state_->FindJob(want.job);
  BDS_CHECK(job != nullptr);
  int64_t tag = next_tag_++;
  auto flow = sim_->StartFlow(path->links, job->BlockSizeOf(want.block), /*pinned_rate=*/0.0,
                              tag, kFlowOwnerTag);
  if (!flow.ok()) {
    return false;
  }
  transfers_[tag] = Transfer{want.job, want.block, src, dst, *flow};
  ++active_uploads_[src];
  ++downloads_started_;
  return true;
}

void DecentralizedEngine::ServeNextUpload(ServerId src) {
  auto it = upload_queue_.find(src);
  if (it == upload_queue_.end()) {
    return;
  }
  std::vector<QueuedRequest>& queue = it->second;
  while (!queue.empty() &&
         (options_.upload_slots <= 0 || active_uploads_[src] < options_.upload_slots)) {
    QueuedRequest req = queue.front();
    queue.erase(queue.begin());
    if (state_->ServerHasBlock(req.want.job, req.want.block, req.dst) ||
        !state_->ServerHasBlock(req.want.job, req.want.block, src)) {
      // Delivered elsewhere meanwhile, or the source lost the block: free
      // the receiver to pick something else.
      --in_flight_[req.dst];
      PumpServer(req.dst);
      continue;
    }
    if (!StartOrQueue(req.want, src, req.dst)) {
      --in_flight_[req.dst];
      queue_[req.dst].push_back(req.want);
      PumpServer(req.dst);
    }
  }
}

void DecentralizedEngine::HandleServerFailure(ServerId server) {
  std::vector<int64_t> doomed;
  for (const auto& [tag, t] : transfers_) {
    if (t.src == server || t.dst == server) {
      doomed.push_back(tag);
    }
  }
  for (int64_t tag : doomed) {
    Transfer t = transfers_[tag];
    transfers_.erase(tag);
    (void)sim_->CancelFlow(t.flow);
    --in_flight_[t.dst];
    --active_uploads_[t.src];
    if (t.dst != server) {
      // The receiver is alive: requeue the block and keep it busy.
      queue_[t.dst].push_back(Want{t.job, t.block});
      PumpServer(t.dst);
    }
  }
  // Requests queued at the failed source go back to their receivers;
  // requests from the failed receiver disappear.
  auto qit = upload_queue_.find(server);
  if (qit != upload_queue_.end()) {
    std::vector<QueuedRequest> orphans = std::move(qit->second);
    upload_queue_.erase(qit);
    for (QueuedRequest& req : orphans) {
      --in_flight_[req.dst];
      queue_[req.dst].push_back(req.want);
      PumpServer(req.dst);
    }
  }
  for (auto& [src, queue] : upload_queue_) {
    for (size_t i = 0; i < queue.size();) {
      if (queue[i].dst == server) {
        queue.erase(queue.begin() + static_cast<long>(i));
      } else {
        ++i;
      }
    }
  }
}

int DecentralizedEngine::HandleLinkFault(LinkId link) {
  std::vector<int64_t> doomed;
  for (const auto& [tag, t] : transfers_) {
    auto flow = sim_->FindFlow(t.flow);
    if (!flow) {
      continue;
    }
    if (flow->Crosses(link)) {
      doomed.push_back(tag);
    }
  }
  std::sort(doomed.begin(), doomed.end());  // Map order is incidental.
  for (int64_t tag : doomed) {
    Transfer t = transfers_[tag];
    transfers_.erase(tag);
    (void)sim_->CancelFlow(t.flow);
    --in_flight_[t.dst];
    --active_uploads_[t.src];
    queue_[t.dst].push_back(Want{t.job, t.block});
    PumpServer(t.dst);  // May pick a source reachable over surviving links.
    ServeNextUpload(t.src);
  }
  return static_cast<int>(doomed.size());
}

bool DecentralizedEngine::OnFlowComplete(const FlowRecord& record) {
  if (record.tag2 != kFlowOwnerTag) {
    return false;
  }
  auto it = transfers_.find(record.tag);
  if (it == transfers_.end()) {
    return false;
  }
  Transfer t = it->second;
  transfers_.erase(it);
  --in_flight_[t.dst];
  --active_uploads_[t.src];
  if (corruption_hook_ && corruption_hook_(t.job, t.block)) {
    // Checksum failed: the bytes crossed the network but the block is not
    // credited; the receiver queues it again.
    queue_[t.dst].push_back(Want{t.job, t.block});
    ServeNextUpload(t.src);
    PumpServer(t.dst);
    return true;
  }
  // The engine is the data plane; record the delivery in the global state.
  (void)state_->NoteDelivery(t.job, t.block, t.src, t.dst);
  if (on_delivery_) {
    on_delivery_(t.job, t.block, t.src, t.dst);
  }
  ServeNextUpload(t.src);
  PumpServer(t.dst);
  return true;
}

}  // namespace bds
