#include "src/baselines/strategy.h"

#include <algorithm>

namespace bds {

std::vector<double> MulticastRunResult::ServerCompletionMinutes() const {
  std::vector<double> out;
  out.reserve(server_completion.size());
  for (const auto& [server, t] : server_completion) {
    out.push_back(ToMinutes(t));
  }
  return out;
}

CompletionTracker::CompletionTracker(const Topology* topo, ReplicaState* state)
    : topo_(topo), state_(state) {
  BDS_CHECK(topo != nullptr && state != nullptr);
  for (ServerId s : state->AllDestinationServers()) {
    if (state->OwedByServer(s) > 0) {
      ++dc_outstanding_servers_[topo_->server(s).dc];
    } else {
      // The server owes nothing (e.g. fewer blocks than servers): done at 0.
      server_done_[s] = 0.0;
    }
  }
  // DCs whose every server owed nothing are done at time 0.
  for (const auto& [s, t] : server_done_) {
    DcId dc = topo_->server(s).dc;
    if (dc_outstanding_servers_.count(dc) == 0) {
      dc_done_.emplace(dc, 0.0);
    }
  }
}

void CompletionTracker::OnDelivery(ServerId dest_server, SimTime now) {
  ++deliveries_;
  if (state_->OwedByServer(dest_server) > 0 || server_done_.count(dest_server) != 0) {
    return;
  }
  server_done_[dest_server] = now;
  DcId dc = topo_->server(dest_server).dc;
  auto it = dc_outstanding_servers_.find(dc);
  if (it != dc_outstanding_servers_.end() && --it->second == 0) {
    dc_done_[dc] = now;
  }
}

MulticastRunResult CompletionTracker::Finish(SimTime now, bool completed) {
  MulticastRunResult result;
  result.completed = completed;
  result.deliveries = deliveries_;
  SimTime latest = 0.0;
  for (const auto& [server, t] : server_done_) {
    result.server_completion.emplace_back(server, t);
    latest = std::max(latest, t);
  }
  std::sort(result.server_completion.begin(), result.server_completion.end());
  for (const auto& [dc, t] : dc_done_) {
    result.dc_completion.emplace(dc, t);
  }
  result.completion_time = completed ? latest : now;
  return result;
}

}  // namespace bds
