#include "src/topology/routing.h"

#include <algorithm>
#include <limits>
#include <queue>

namespace bds {

Rate WanRoute::BottleneckCapacity(const Topology& topo) const {
  Rate cap = std::numeric_limits<double>::infinity();
  for (LinkId l : links) {
    cap = std::min(cap, topo.link(l).capacity);
  }
  return cap;
}

StatusOr<WanRoute> ShortestWanRoute(const Topology& topo, DcId src, DcId dst,
                                    const std::vector<bool>* banned_links,
                                    const std::vector<bool>* banned_dcs) {
  if (src < 0 || src >= topo.num_dcs() || dst < 0 || dst >= topo.num_dcs()) {
    return InvalidArgumentError("ShortestWanRoute: no such DC");
  }
  if (src == dst) {
    return InvalidArgumentError("ShortestWanRoute: src == dst");
  }

  struct NodeState {
    int hops = std::numeric_limits<int>::max();
    Rate bottleneck = 0.0;
    LinkId via_link = kInvalidLink;
    DcId via_dc = kInvalidDc;
  };
  std::vector<NodeState> state(static_cast<size_t>(topo.num_dcs()));

  // Priority: fewer hops first, then larger bottleneck.
  struct QEntry {
    int hops;
    Rate bottleneck;
    DcId dc;
    bool operator<(const QEntry& o) const {
      if (hops != o.hops) {
        return hops > o.hops;  // min-heap on hops
      }
      return bottleneck < o.bottleneck;  // max-heap on bottleneck
    }
  };
  std::priority_queue<QEntry> queue;

  auto dc_banned = [&](DcId d) {
    return banned_dcs != nullptr && static_cast<size_t>(d) < banned_dcs->size() &&
           (*banned_dcs)[static_cast<size_t>(d)];
  };
  auto link_banned = [&](LinkId l) {
    return banned_links != nullptr && static_cast<size_t>(l) < banned_links->size() &&
           (*banned_links)[static_cast<size_t>(l)];
  };

  if (dc_banned(src) || dc_banned(dst)) {
    return NotFoundError("ShortestWanRoute: endpoint banned");
  }

  state[static_cast<size_t>(src)] = {0, std::numeric_limits<double>::infinity(), kInvalidLink,
                                     kInvalidDc};
  queue.push({0, std::numeric_limits<double>::infinity(), src});

  while (!queue.empty()) {
    QEntry top = queue.top();
    queue.pop();
    NodeState& cur = state[static_cast<size_t>(top.dc)];
    if (top.hops != cur.hops || top.bottleneck != cur.bottleneck) {
      continue;  // Stale entry.
    }
    if (top.dc == dst) {
      break;
    }
    for (LinkId lid : topo.WanLinksFrom(top.dc)) {
      if (link_banned(lid)) {
        continue;
      }
      const Link& l = topo.link(lid);
      if (dc_banned(l.dst_dc)) {
        continue;
      }
      int nhops = top.hops + 1;
      Rate nbottleneck = std::min(top.bottleneck, l.capacity);
      NodeState& nxt = state[static_cast<size_t>(l.dst_dc)];
      if (nhops < nxt.hops || (nhops == nxt.hops && nbottleneck > nxt.bottleneck)) {
        nxt.hops = nhops;
        nxt.bottleneck = nbottleneck;
        nxt.via_link = lid;
        nxt.via_dc = top.dc;
        queue.push({nhops, nbottleneck, l.dst_dc});
      }
    }
  }

  if (state[static_cast<size_t>(dst)].hops == std::numeric_limits<int>::max()) {
    return NotFoundError("ShortestWanRoute: unreachable");
  }

  WanRoute route;
  for (DcId at = dst; at != src;) {
    const NodeState& st = state[static_cast<size_t>(at)];
    route.links.push_back(st.via_link);
    route.dcs.push_back(at);
    at = st.via_dc;
  }
  route.dcs.push_back(src);
  std::reverse(route.links.begin(), route.links.end());
  std::reverse(route.dcs.begin(), route.dcs.end());
  return route;
}

namespace {

bool SameRoute(const WanRoute& a, const WanRoute& b) { return a.links == b.links; }

// Orders candidate routes: fewer hops first, then larger bottleneck.
bool BetterRoute(const Topology& topo, const WanRoute& a, const WanRoute& b) {
  if (a.hops() != b.hops()) {
    return a.hops() < b.hops();
  }
  return a.BottleneckCapacity(topo) > b.BottleneckCapacity(topo);
}

}  // namespace

std::vector<WanRoute> KShortestWanRoutes(const Topology& topo, DcId src, DcId dst, int k) {
  std::vector<WanRoute> result;
  if (k <= 0) {
    return result;
  }
  auto first = ShortestWanRoute(topo, src, dst);
  if (!first.ok()) {
    return result;
  }
  result.push_back(std::move(first).value());

  std::vector<WanRoute> candidates;
  std::vector<bool> banned_links(static_cast<size_t>(topo.num_links()), false);
  std::vector<bool> banned_dcs(static_cast<size_t>(topo.num_dcs()), false);

  while (static_cast<int>(result.size()) < k) {
    const WanRoute& prev = result.back();
    // Spur from each node of the previous route.
    for (size_t spur_idx = 0; spur_idx + 1 < prev.dcs.size(); ++spur_idx) {
      DcId spur_dc = prev.dcs[spur_idx];
      // Root: prefix of prev up to spur node.
      WanRoute root;
      root.dcs.assign(prev.dcs.begin(), prev.dcs.begin() + static_cast<long>(spur_idx) + 1);
      root.links.assign(prev.links.begin(), prev.links.begin() + static_cast<long>(spur_idx));

      std::fill(banned_links.begin(), banned_links.end(), false);
      std::fill(banned_dcs.begin(), banned_dcs.end(), false);

      // Ban the next link of every found route sharing this root.
      for (const WanRoute& r : result) {
        if (r.links.size() > spur_idx &&
            std::equal(root.links.begin(), root.links.end(), r.links.begin())) {
          banned_links[static_cast<size_t>(r.links[spur_idx])] = true;
        }
      }
      // Ban root nodes (except the spur node) to keep routes loopless.
      for (size_t i = 0; i < spur_idx; ++i) {
        banned_dcs[static_cast<size_t>(prev.dcs[i])] = true;
      }

      auto spur = ShortestWanRoute(topo, spur_dc, dst, &banned_links, &banned_dcs);
      if (!spur.ok()) {
        continue;
      }
      WanRoute total = root;
      total.links.insert(total.links.end(), spur->links.begin(), spur->links.end());
      total.dcs.insert(total.dcs.end(), spur->dcs.begin() + 1, spur->dcs.end());

      bool duplicate = false;
      for (const WanRoute& r : result) {
        if (SameRoute(r, total)) {
          duplicate = true;
          break;
        }
      }
      for (const WanRoute& r : candidates) {
        if (SameRoute(r, total)) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) {
        candidates.push_back(std::move(total));
      }
    }
    if (candidates.empty()) {
      break;
    }
    auto best = std::min_element(candidates.begin(), candidates.end(),
                                 [&](const WanRoute& a, const WanRoute& b) {
                                   return BetterRoute(topo, a, b);
                                 });
    result.push_back(*best);
    candidates.erase(best);
  }
  return result;
}

StatusOr<WanRoutingTable> WanRoutingTable::Build(const Topology& topo, int k) {
  if (k <= 0) {
    return InvalidArgumentError("WanRoutingTable: k must be positive");
  }
  WanRoutingTable table(topo.num_dcs(), k);
  for (DcId src = 0; src < topo.num_dcs(); ++src) {
    for (DcId dst = 0; dst < topo.num_dcs(); ++dst) {
      if (src == dst) {
        continue;
      }
      table.routes_[table.Index(src, dst)] = KShortestWanRoutes(topo, src, dst, k);
    }
  }
  return table;
}

const std::vector<WanRoute>& WanRoutingTable::Routes(DcId src, DcId dst) const {
  static const std::vector<WanRoute> kEmpty;
  if (src < 0 || src >= num_dcs_ || dst < 0 || dst >= num_dcs_ || src == dst) {
    return kEmpty;
  }
  return routes_[Index(src, dst)];
}

StatusOr<WanRoute> WanRoutingTable::PrimaryRoute(DcId src, DcId dst) const {
  const auto& routes = Routes(src, dst);
  if (routes.empty()) {
    return NotFoundError("PrimaryRoute: unreachable DC pair");
  }
  return routes[0];
}

}  // namespace bds
