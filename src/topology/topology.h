// Static description of the geo-distributed infrastructure BDS runs on:
// datacenters, servers (overlay nodes) with NIC capacities, and directed WAN
// links between DC pairs. The intra-DC fabric is modelled as non-blocking —
// the paper's transfers are bottlenecked at server NICs and WAN links (§2.3).

#ifndef BDS_SRC_TOPOLOGY_TOPOLOGY_H_
#define BDS_SRC_TOPOLOGY_TOPOLOGY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"

namespace bds {

enum class LinkType {
  kServerUp,    // Server NIC, egress.
  kServerDown,  // Server NIC, ingress.
  kWan,         // Directed inter-DC WAN link.
};

const char* LinkTypeName(LinkType type);

struct Link {
  LinkId id = kInvalidLink;
  LinkType type = LinkType::kWan;
  Rate capacity = 0.0;

  // kWan: endpoints are DCs. kServerUp/kServerDown: `server` owns the NIC and
  // src_dc == dst_dc == that server's DC.
  DcId src_dc = kInvalidDc;
  DcId dst_dc = kInvalidDc;
  ServerId server = kInvalidServer;
};

struct Server {
  ServerId id = kInvalidServer;
  DcId dc = kInvalidDc;
  Rate up_capacity = 0.0;
  Rate down_capacity = 0.0;
  LinkId uplink = kInvalidLink;
  LinkId downlink = kInvalidLink;
};

struct Datacenter {
  DcId id = kInvalidDc;
  std::string name;
  std::vector<ServerId> servers;
};

class Topology {
 public:
  Topology() = default;

  DcId AddDatacenter(std::string name);

  // Adds a server to `dc` with the given NIC capacities; creates its up/down
  // links. Capacities must be positive.
  StatusOr<ServerId> AddServer(DcId dc, Rate up_capacity, Rate down_capacity);

  // Adds a directed WAN link. A pair may have multiple parallel links.
  StatusOr<LinkId> AddWanLink(DcId src_dc, DcId dst_dc, Rate capacity);

  // Replaces the capacity of an existing link (used by dynamic experiments).
  Status SetLinkCapacity(LinkId link, Rate capacity);

  // Symmetric DC-to-DC one-way control latency in seconds (defaults to 0).
  void SetDcLatency(DcId a, DcId b, double seconds);
  double DcLatency(DcId a, DcId b) const;

  int num_dcs() const { return static_cast<int>(dcs_.size()); }
  int num_servers() const { return static_cast<int>(servers_.size()); }
  int num_links() const { return static_cast<int>(links_.size()); }

  const Datacenter& dc(DcId id) const;
  const Server& server(ServerId id) const;
  const Link& link(LinkId id) const;

  const std::vector<Datacenter>& dcs() const { return dcs_; }
  const std::vector<Server>& servers() const { return servers_; }
  const std::vector<Link>& links() const { return links_; }

  // All WAN links leaving `dc`, for graph traversals.
  const std::vector<LinkId>& WanLinksFrom(DcId dc) const;

  // The servers of `dc` (convenience passthrough).
  const std::vector<ServerId>& ServersIn(DcId dc) const;

  // Human-readable one-line summary, e.g. "10 DCs, 670 servers, 90 WAN links".
  std::string Summary() const;

 private:
  bool ValidDc(DcId id) const { return id >= 0 && id < num_dcs(); }
  bool ValidServer(ServerId id) const { return id >= 0 && id < num_servers(); }
  bool ValidLink(LinkId id) const { return id >= 0 && id < num_links(); }
  static uint64_t LatencyKey(DcId a, DcId b);

  std::vector<Datacenter> dcs_;
  std::vector<Server> servers_;
  std::vector<Link> links_;
  std::vector<std::vector<LinkId>> wan_out_;  // Per-DC outgoing WAN links.
  // Sparse symmetric latency store keyed by the canonical (lo, hi) DC pair;
  // absent pairs read as 0. A dense num_dcs^2 matrix would cost O(N^2) memory
  // and O(N^2) rebuild per AddDatacenter — fleet-scale benches build 10^4 DCs.
  std::unordered_map<uint64_t, double> dc_latency_;
};

}  // namespace bds

#endif  // BDS_SRC_TOPOLOGY_TOPOLOGY_H_
