#include "src/topology/builders.h"

#include <string>

namespace bds {

namespace {

Status AddServers(Topology& topo, DcId dc, int count, Rate up, Rate down) {
  for (int i = 0; i < count; ++i) {
    auto s = topo.AddServer(dc, up, down);
    if (!s.ok()) {
      return s.status();
    }
  }
  return Status::Ok();
}

}  // namespace

StatusOr<Topology> BuildGeoTopology(const GeoTopologyOptions& options) {
  if (options.num_dcs < 2) {
    return InvalidArgumentError("BuildGeoTopology: need at least 2 DCs");
  }
  if (options.servers_per_dc < 1) {
    return InvalidArgumentError("BuildGeoTopology: need at least 1 server per DC");
  }
  if (options.wan_density < 0.0 || options.wan_density > 1.0) {
    return InvalidArgumentError("BuildGeoTopology: wan_density must be in [0,1]");
  }
  if (options.wan_capacity_jitter < 0.0 || options.wan_capacity_jitter >= 1.0) {
    return InvalidArgumentError("BuildGeoTopology: jitter must be in [0,1)");
  }

  Rng rng(options.seed);
  Topology topo;
  for (int d = 0; d < options.num_dcs; ++d) {
    DcId dc = topo.AddDatacenter("dc" + std::to_string(d));
    BDS_RETURN_IF_ERROR(
        AddServers(topo, dc, options.servers_per_dc, options.server_up, options.server_down));
  }

  auto draw_capacity = [&]() {
    double j = options.wan_capacity_jitter;
    return options.wan_capacity * rng.Uniform(1.0 - j, 1.0 + j);
  };

  // Bidirectional ring guarantees every DC pair is reachable.
  for (int d = 0; d < options.num_dcs; ++d) {
    DcId next = static_cast<DcId>((d + 1) % options.num_dcs);
    auto fwd = topo.AddWanLink(static_cast<DcId>(d), next, draw_capacity());
    if (!fwd.ok()) {
      return fwd.status();
    }
    auto back = topo.AddWanLink(next, static_cast<DcId>(d), draw_capacity());
    if (!back.ok()) {
      return back.status();
    }
  }

  // Random extra links up to the requested density.
  for (DcId a = 0; a < options.num_dcs; ++a) {
    for (DcId b = 0; b < options.num_dcs; ++b) {
      if (a == b) {
        continue;
      }
      bool is_ring = (b == (a + 1) % options.num_dcs) ||
                     (a == (b + 1) % options.num_dcs);
      if (is_ring) {
        continue;  // Already connected.
      }
      if (rng.Bernoulli(options.wan_density)) {
        auto l = topo.AddWanLink(a, b, draw_capacity());
        if (!l.ok()) {
          return l.status();
        }
      }
    }
  }

  for (DcId a = 0; a < options.num_dcs; ++a) {
    for (DcId b = static_cast<DcId>(a + 1); b < options.num_dcs; ++b) {
      topo.SetDcLatency(a, b, rng.Uniform(options.min_latency, options.max_latency));
    }
  }
  return topo;
}

StatusOr<Topology> BuildFullMesh(int num_dcs, int servers_per_dc, Rate wan_capacity,
                                 Rate server_up, Rate server_down) {
  if (num_dcs < 2 || servers_per_dc < 1) {
    return InvalidArgumentError("BuildFullMesh: bad dimensions");
  }
  Topology topo;
  for (int d = 0; d < num_dcs; ++d) {
    DcId dc = topo.AddDatacenter("dc" + std::to_string(d));
    BDS_RETURN_IF_ERROR(AddServers(topo, dc, servers_per_dc, server_up, server_down));
  }
  for (DcId a = 0; a < num_dcs; ++a) {
    for (DcId b = 0; b < num_dcs; ++b) {
      if (a == b) {
        continue;
      }
      auto l = topo.AddWanLink(a, b, wan_capacity);
      if (!l.ok()) {
        return l.status();
      }
    }
  }
  return topo;
}

Figure3Topology BuildFigure3Example() {
  Figure3Topology fig;
  Topology& topo = fig.topo;
  fig.dc_a = topo.AddDatacenter("A");
  fig.dc_b = topo.AddDatacenter("B");
  fig.dc_c = topo.AddDatacenter("C");

  // Non-bottleneck NICs are set to 100 GB/s.
  const Rate kBig = GBps(100.0);
  fig.server_a = topo.AddServer(fig.dc_a, kBig, kBig).value();
  // Relay b: 6 GB/s inbound from A, 3 GB/s outbound toward C (§2.2).
  fig.server_b = topo.AddServer(fig.dc_b, GBps(3.0), GBps(6.0)).value();
  fig.server_b_dst = topo.AddServer(fig.dc_b, kBig, kBig).value();
  fig.server_c = topo.AddServer(fig.dc_c, kBig, kBig).value();

  // The IP route A->C is a direct 2 GB/s WAN link; the relay route uses
  // A->B (6 GB/s) then B->C (3 GB/s).
  BDS_CHECK(topo.AddWanLink(fig.dc_a, fig.dc_c, GBps(2.0)).ok());
  BDS_CHECK(topo.AddWanLink(fig.dc_a, fig.dc_b, GBps(6.0)).ok());
  BDS_CHECK(topo.AddWanLink(fig.dc_b, fig.dc_c, GBps(3.0)).ok());

  topo.SetDcLatency(fig.dc_a, fig.dc_b, 0.02);
  topo.SetDcLatency(fig.dc_b, fig.dc_c, 0.02);
  topo.SetDcLatency(fig.dc_a, fig.dc_c, 0.03);
  return fig;
}

StatusOr<Topology> BuildGingkoExperiment(int num_dest_dcs, int servers_per_dc, Rate server_rate,
                                         Rate wan_capacity) {
  if (num_dest_dcs < 1 || servers_per_dc < 1) {
    return InvalidArgumentError("BuildGingkoExperiment: bad dimensions");
  }
  Topology topo;
  DcId src = topo.AddDatacenter("src");
  BDS_RETURN_IF_ERROR(AddServers(topo, src, servers_per_dc, server_rate, server_rate));
  for (int d = 0; d < num_dest_dcs; ++d) {
    DcId dc = topo.AddDatacenter("dst" + std::to_string(d));
    BDS_RETURN_IF_ERROR(AddServers(topo, dc, servers_per_dc, server_rate, server_rate));
  }
  // Full mesh so destination DCs can exchange blocks with each other too.
  for (DcId a = 0; a < topo.num_dcs(); ++a) {
    for (DcId b = 0; b < topo.num_dcs(); ++b) {
      if (a == b) {
        continue;
      }
      auto l = topo.AddWanLink(a, b, wan_capacity);
      if (!l.ok()) {
        return l.status();
      }
    }
  }
  for (DcId a = 0; a < topo.num_dcs(); ++a) {
    for (DcId b = static_cast<DcId>(a + 1); b < topo.num_dcs(); ++b) {
      topo.SetDcLatency(a, b, 0.025);
    }
  }
  return topo;
}

StatusOr<Topology> BuildTwoDcMicro(int servers_per_dc, Rate server_rate, Rate wan_capacity) {
  return BuildFullMesh(2, servers_per_dc, wan_capacity, server_rate, server_rate);
}

}  // namespace bds
