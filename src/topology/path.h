// Server-to-server transfer paths.
//
// A ServerPath is one overlay hop in BDS terms: bytes leave the source
// server's uplink, traverse a WAN route (possibly through transit DCs at the
// IP layer), and enter the destination server's downlink. Store-and-forward
// relaying composes ServerPaths across scheduling cycles into the paper's
// multi-hop overlay paths.

#ifndef BDS_SRC_TOPOLOGY_PATH_H_
#define BDS_SRC_TOPOLOGY_PATH_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/topology/routing.h"
#include "src/topology/topology.h"

namespace bds {

struct ServerPath {
  ServerId src = kInvalidServer;
  ServerId dst = kInvalidServer;
  // All capacity-constrained links, in order: src uplink, WAN links (empty
  // when src and dst share a DC), dst downlink.
  std::vector<LinkId> links;
  // Which of the routing table's WAN routes this path uses (0 = primary);
  // -1 for intra-DC paths.
  int wan_route_index = -1;

  // The minimum capacity along this path at build time.
  Rate BottleneckCapacity(const Topology& topo) const;

  std::string ToString(const Topology& topo) const;
};

// Builds the ServerPath from `src` to `dst` using `route_index`-th WAN route
// between their DCs (ignored when the servers share a DC).
StatusOr<ServerPath> MakeServerPath(const Topology& topo, const WanRoutingTable& routing,
                                    ServerId src, ServerId dst, int route_index = 0);

// Enumerates all ServerPaths from `src` to `dst` (one per available WAN
// route, or the single intra-DC path).
std::vector<ServerPath> EnumerateServerPaths(const Topology& topo, const WanRoutingTable& routing,
                                             ServerId src, ServerId dst);

}  // namespace bds

#endif  // BDS_SRC_TOPOLOGY_PATH_H_
