// Per-(source DC, destination DC) overlay path cache.
//
// RouteBlocks builds one commodity per (src server, dst server) subtask and
// needs that pair's candidate ServerPaths every cycle. All pairs with the
// same (src DC, dst DC) share their WAN route structure — only the NIC links
// at the ends differ — so enumerating paths per server pair from scratch
// (EnumerateServerPaths) repeats the same routing-table walk O(servers^2)
// times per cycle. This cache stores the DC-level skeleton (the WAN link
// sequence of each candidate route, already truncated to max_routes) once
// per DC pair; materializing a server pair's paths is then a copy plus
// patching the two NIC links on.
//
// Invalidation: cached skeletons depend only on the routing table's route
// sets — NOT on link capacities, so residual-capacity changes and degraded
// links need no invalidation (the MCF sees those through its capacity
// vector, and zero-capacity paths are dropped by the solver). Invalidate()
// must be called when the route sets themselves may have changed: the
// routing table was rebuilt, or a link fault changed which routes exist
// (the controller invalidates on every link fault event, which is cheap —
// skeletons rebuild lazily per pair).

#ifndef BDS_SRC_TOPOLOGY_PATH_CACHE_H_
#define BDS_SRC_TOPOLOGY_PATH_CACHE_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/common/types.h"
#include "src/topology/path.h"
#include "src/topology/routing.h"
#include "src/topology/topology.h"

namespace bds {

class ServerPathCache {
 public:
  // `max_routes` caps the candidate WAN routes per DC pair (the controller's
  // max_wan_routes knob); the routing table may hold more.
  ServerPathCache(const Topology* topo, const WanRoutingTable* routing, int max_routes);

  // Builds the skeleton for (src_dc, dst_dc) if absent. Must be called (not
  // thread-safe) before concurrent MaterializePaths calls touch the pair.
  void EnsurePair(DcId src_dc, DcId dst_dc);

  // Writes the candidate ServerPaths from `src` to `dst` into `out`
  // (resized; inner link buffers are reused). Equivalent to
  // EnumerateServerPaths truncated to max_routes. Requires EnsurePair for
  // the servers' DC pair; read-only and safe to call concurrently after it.
  void MaterializePaths(ServerId src, ServerId dst, std::vector<ServerPath>* out) const;

  // Drops every skeleton; pairs rebuild lazily. Call after the routing
  // table's route sets may have changed.
  void Invalidate();

  // Number of Invalidate() calls so far (exposed for tests and debugging).
  int64_t generation() const { return generation_; }
  // Skeleton rebuilds since construction; a steady state should stop
  // accumulating misses.
  int64_t misses() const { return misses_; }

  // Cache effectiveness counters. hits counts MaterializePaths calls served
  // from a built skeleton (relaxed atomic — the call is concurrent under the
  // controller's thread pool, and shard/thread counts must not change the
  // totals a single-threaded run would report); misses counts skeleton
  // builds; invalidations counts Invalidate() calls (== generation()). The
  // shard-parity tests assert sharded and unsharded runs observe identical
  // miss/invalidation counts on route changes.
  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t invalidations = 0;
  };
  Stats stats() const {
    return Stats{hits_.load(std::memory_order_relaxed), misses_, generation_};
  }

 private:
  struct DcPairEntry {
    bool built = false;
    // One element per candidate route: the WAN links in path order (empty
    // for the intra-DC pseudo-route) and the route's index in the routing
    // table (-1 intra-DC).
    std::vector<std::vector<LinkId>> wan_links;
    std::vector<int> route_index;
  };

  size_t PairIndex(DcId src_dc, DcId dst_dc) const {
    return static_cast<size_t>(src_dc) * static_cast<size_t>(topo_->num_dcs()) +
           static_cast<size_t>(dst_dc);
  }

  const Topology* topo_;
  const WanRoutingTable* routing_;
  const int max_routes_;
  std::vector<DcPairEntry> entries_;  // Dense num_dcs x num_dcs grid.
  int64_t generation_ = 0;
  int64_t misses_ = 0;
  mutable std::atomic<int64_t> hits_{0};  // Bumped in const MaterializePaths.
};

}  // namespace bds

#endif  // BDS_SRC_TOPOLOGY_PATH_CACHE_H_
