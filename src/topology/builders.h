// Synthetic topology generators.
//
// Every evaluation scenario in the paper runs on one of a handful of
// infrastructure shapes: Baidu's 10-30 geo-distributed DCs, the 3-DC
// illustrative example of Figure 3, and small micro-benchmark setups.
// The builders here create those shapes deterministically from a seed.

#ifndef BDS_SRC_TOPOLOGY_BUILDERS_H_
#define BDS_SRC_TOPOLOGY_BUILDERS_H_

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/types.h"
#include "src/topology/topology.h"

namespace bds {

struct GeoTopologyOptions {
  int num_dcs = 10;
  int servers_per_dc = 10;

  Rate server_up = MBps(20.0);
  Rate server_down = MBps(20.0);

  // Mean WAN capacity between directly connected DC pairs. Individual links
  // draw from [mean * (1 - jitter), mean * (1 + jitter)] to create the
  // capacity diversity that makes overlay paths bottleneck-disjoint (§2.2).
  Rate wan_capacity = Gbps(10.0);
  double wan_capacity_jitter = 0.4;

  // Fraction of ordered DC pairs that have a direct WAN link. Pairs without
  // one route through transit DCs, creating Type I overlay path diversity.
  // The generator guarantees connectivity via a bidirectional ring.
  double wan_density = 0.7;

  // One-way inter-DC control latency drawn uniformly from this range
  // (seconds). Matches Fig 11b's 5-50 ms spread.
  double min_latency = 0.005;
  double max_latency = 0.050;

  uint64_t seed = 1;
};

// A Baidu-like geo-distributed deployment: ring backbone for connectivity
// plus random extra WAN links, heterogeneous capacities and latencies.
StatusOr<Topology> BuildGeoTopology(const GeoTopologyOptions& options);

// Full mesh of identical WAN links — the worst case for overlay gains and
// the easiest to reason about in unit tests.
StatusOr<Topology> BuildFullMesh(int num_dcs, int servers_per_dc, Rate wan_capacity,
                                 Rate server_up, Rate server_down);

// The Figure 3 / §2.2 illustrative example:
//   DC A (source, 1 server a), DC B (relay server b + 1 destination server),
//   DC C (1 destination server c).
//   WAN A->C: 2 GB/s (the IP route),   WAN A->B: 6 GB/s,   WAN B->C: 3 GB/s.
//   Server b: 6 GB/s down, 3 GB/s up. Other servers' NICs are non-bottleneck.
// With 36 GB split into 6 GB blocks: direct replication 18 s, chain 13 s,
// intelligent multicast overlay 9 s.
struct Figure3Topology {
  Topology topo;
  ServerId server_a = kInvalidServer;     // Source, in DC A.
  ServerId server_b = kInvalidServer;     // Relay, in DC B.
  ServerId server_b_dst = kInvalidServer; // Destination in DC B.
  ServerId server_c = kInvalidServer;     // Destination, in DC C.
  DcId dc_a = kInvalidDc;
  DcId dc_b = kInvalidDc;
  DcId dc_c = kInvalidDc;
};
Figure3Topology BuildFigure3Example();

// Figure 5's Gingko experiment: one source DC and `num_dest_dcs` destination
// DCs, each with `servers_per_dc` servers at 20 Mbps up/down (defaults from
// §2.3: 2 destination DCs with 640 servers each).
StatusOr<Topology> BuildGingkoExperiment(int num_dest_dcs = 2, int servers_per_dc = 640,
                                         Rate server_rate = Mbps(20.0),
                                         Rate wan_capacity = Gbps(40.0));

// Figure 13b's micro setup: 2 DCs, 4 servers, 20 MB/s server up/down rates.
StatusOr<Topology> BuildTwoDcMicro(int servers_per_dc = 2, Rate server_rate = MBps(20.0),
                                   Rate wan_capacity = MBps(200.0));

}  // namespace bds

#endif  // BDS_SRC_TOPOLOGY_BUILDERS_H_
