#include "src/topology/path.h"

#include <algorithm>
#include <limits>
#include <sstream>

namespace bds {

Rate ServerPath::BottleneckCapacity(const Topology& topo) const {
  Rate cap = std::numeric_limits<double>::infinity();
  for (LinkId l : links) {
    cap = std::min(cap, topo.link(l).capacity);
  }
  return cap;
}

std::string ServerPath::ToString(const Topology& topo) const {
  std::ostringstream os;
  os << "s" << src << "(dc" << topo.server(src).dc << ")";
  for (LinkId l : links) {
    const Link& link = topo.link(l);
    if (link.type == LinkType::kWan) {
      os << " -> dc" << link.dst_dc;
    }
  }
  os << " -> s" << dst;
  return os.str();
}

StatusOr<ServerPath> MakeServerPath(const Topology& topo, const WanRoutingTable& routing,
                                    ServerId src, ServerId dst, int route_index) {
  if (src < 0 || src >= topo.num_servers() || dst < 0 || dst >= topo.num_servers()) {
    return InvalidArgumentError("MakeServerPath: no such server");
  }
  if (src == dst) {
    return InvalidArgumentError("MakeServerPath: src == dst");
  }
  const Server& s = topo.server(src);
  const Server& d = topo.server(dst);

  ServerPath path;
  path.src = src;
  path.dst = dst;
  path.links.push_back(s.uplink);
  if (s.dc != d.dc) {
    const auto& routes = routing.Routes(s.dc, d.dc);
    if (route_index < 0 || route_index >= static_cast<int>(routes.size())) {
      return NotFoundError("MakeServerPath: no such WAN route");
    }
    const WanRoute& route = routes[static_cast<size_t>(route_index)];
    path.links.insert(path.links.end(), route.links.begin(), route.links.end());
    path.wan_route_index = route_index;
  }
  path.links.push_back(d.downlink);
  return path;
}

std::vector<ServerPath> EnumerateServerPaths(const Topology& topo, const WanRoutingTable& routing,
                                             ServerId src, ServerId dst) {
  std::vector<ServerPath> out;
  if (src == dst) {
    return out;
  }
  const Server& s = topo.server(src);
  const Server& d = topo.server(dst);
  if (s.dc == d.dc) {
    auto p = MakeServerPath(topo, routing, src, dst, 0);
    if (p.ok()) {
      out.push_back(std::move(p).value());
    }
    return out;
  }
  int n = static_cast<int>(routing.Routes(s.dc, d.dc).size());
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto p = MakeServerPath(topo, routing, src, dst, i);
    if (p.ok()) {
      out.push_back(std::move(p).value());
    }
  }
  return out;
}

}  // namespace bds
