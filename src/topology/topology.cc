#include "src/topology/topology.h"

#include <sstream>

namespace bds {

const char* LinkTypeName(LinkType type) {
  switch (type) {
    case LinkType::kServerUp:
      return "server-up";
    case LinkType::kServerDown:
      return "server-down";
    case LinkType::kWan:
      return "wan";
  }
  return "?";
}

DcId Topology::AddDatacenter(std::string name) {
  DcId id = static_cast<DcId>(dcs_.size());
  dcs_.push_back(Datacenter{id, std::move(name), {}});
  wan_out_.emplace_back();
  return id;
}

StatusOr<ServerId> Topology::AddServer(DcId dc, Rate up_capacity, Rate down_capacity) {
  if (!ValidDc(dc)) {
    return InvalidArgumentError("AddServer: no such DC");
  }
  if (up_capacity <= 0.0 || down_capacity <= 0.0) {
    return InvalidArgumentError("AddServer: capacities must be positive");
  }
  ServerId id = static_cast<ServerId>(servers_.size());

  LinkId up = static_cast<LinkId>(links_.size());
  links_.push_back(Link{up, LinkType::kServerUp, up_capacity, dc, dc, id});
  LinkId down = static_cast<LinkId>(links_.size());
  links_.push_back(Link{down, LinkType::kServerDown, down_capacity, dc, dc, id});

  servers_.push_back(Server{id, dc, up_capacity, down_capacity, up, down});
  dcs_[static_cast<size_t>(dc)].servers.push_back(id);
  return id;
}

StatusOr<LinkId> Topology::AddWanLink(DcId src_dc, DcId dst_dc, Rate capacity) {
  if (!ValidDc(src_dc) || !ValidDc(dst_dc)) {
    return InvalidArgumentError("AddWanLink: no such DC");
  }
  if (src_dc == dst_dc) {
    return InvalidArgumentError("AddWanLink: src and dst DC must differ");
  }
  if (capacity <= 0.0) {
    return InvalidArgumentError("AddWanLink: capacity must be positive");
  }
  LinkId id = static_cast<LinkId>(links_.size());
  links_.push_back(Link{id, LinkType::kWan, capacity, src_dc, dst_dc, kInvalidServer});
  wan_out_[static_cast<size_t>(src_dc)].push_back(id);
  return id;
}

Status Topology::SetLinkCapacity(LinkId link, Rate capacity) {
  if (!ValidLink(link)) {
    return InvalidArgumentError("SetLinkCapacity: no such link");
  }
  if (capacity <= 0.0) {
    return InvalidArgumentError("SetLinkCapacity: capacity must be positive");
  }
  links_[static_cast<size_t>(link)].capacity = capacity;
  return Status::Ok();
}

uint64_t Topology::LatencyKey(DcId a, DcId b) {
  uint64_t lo = static_cast<uint64_t>(a < b ? a : b);
  uint64_t hi = static_cast<uint64_t>(a < b ? b : a);
  return (lo << 32) | hi;
}

void Topology::SetDcLatency(DcId a, DcId b, double seconds) {
  BDS_CHECK(ValidDc(a) && ValidDc(b) && seconds >= 0.0);
  dc_latency_[LatencyKey(a, b)] = seconds;
}

double Topology::DcLatency(DcId a, DcId b) const {
  BDS_CHECK(ValidDc(a) && ValidDc(b));
  auto it = dc_latency_.find(LatencyKey(a, b));
  return it == dc_latency_.end() ? 0.0 : it->second;
}

const Datacenter& Topology::dc(DcId id) const {
  BDS_CHECK(ValidDc(id));
  return dcs_[static_cast<size_t>(id)];
}

const Server& Topology::server(ServerId id) const {
  BDS_CHECK(ValidServer(id));
  return servers_[static_cast<size_t>(id)];
}

const Link& Topology::link(LinkId id) const {
  BDS_CHECK(ValidLink(id));
  return links_[static_cast<size_t>(id)];
}

const std::vector<LinkId>& Topology::WanLinksFrom(DcId dc) const {
  BDS_CHECK(ValidDc(dc));
  return wan_out_[static_cast<size_t>(dc)];
}

const std::vector<ServerId>& Topology::ServersIn(DcId dc_id) const { return dc(dc_id).servers; }

std::string Topology::Summary() const {
  int wan = 0;
  for (const Link& l : links_) {
    if (l.type == LinkType::kWan) {
      ++wan;
    }
  }
  std::ostringstream os;
  os << num_dcs() << " DCs, " << num_servers() << " servers, " << wan << " WAN links";
  return os.str();
}

}  // namespace bds
