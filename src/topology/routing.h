// WAN routing between datacenters.
//
// The IP layer gives each DC pair a primary route (shortest path over WAN
// links) plus alternates (Yen's k-shortest loopless paths). BDS's Type I
// overlay paths — different sequences of DCs — come from this enumeration;
// Type II paths come from choosing different relay servers on the same DC
// sequence across scheduling cycles.

#ifndef BDS_SRC_TOPOLOGY_ROUTING_H_
#define BDS_SRC_TOPOLOGY_ROUTING_H_

#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/topology/topology.h"

namespace bds {

// A loopless DC-level route: the WAN links traversed, in order, plus the DC
// sequence (dcs.size() == links.size() + 1).
struct WanRoute {
  std::vector<LinkId> links;
  std::vector<DcId> dcs;

  int hops() const { return static_cast<int>(links.size()); }

  // The smallest WAN-link capacity along the route.
  Rate BottleneckCapacity(const Topology& topo) const;
};

class WanRoutingTable {
 public:
  // Enumerates up to `k` shortest routes (by hop count, capacity as
  // tie-break: higher bottleneck preferred) for every ordered DC pair.
  static StatusOr<WanRoutingTable> Build(const Topology& topo, int k);

  // Routes for the ordered pair; empty if unreachable. routes[0] is the
  // primary (IP) route.
  const std::vector<WanRoute>& Routes(DcId src, DcId dst) const;

  // Primary route, or error if unreachable.
  StatusOr<WanRoute> PrimaryRoute(DcId src, DcId dst) const;

  bool Reachable(DcId src, DcId dst) const { return !Routes(src, dst).empty(); }

  int max_routes_per_pair() const { return k_; }

 private:
  WanRoutingTable(int num_dcs, int k) : num_dcs_(num_dcs), k_(k) {
    routes_.resize(static_cast<size_t>(num_dcs) * num_dcs);
  }

  size_t Index(DcId src, DcId dst) const {
    return static_cast<size_t>(src) * num_dcs_ + static_cast<size_t>(dst);
  }

  int num_dcs_;
  int k_;
  std::vector<std::vector<WanRoute>> routes_;
};

// Dijkstra over WAN links with unit hop cost; ties broken toward the route
// with the larger bottleneck capacity. `banned_links` / `banned_dcs` support
// Yen's spur computations and failure experiments. Returns an empty route's
// status error if `dst` is unreachable.
StatusOr<WanRoute> ShortestWanRoute(const Topology& topo, DcId src, DcId dst,
                                    const std::vector<bool>* banned_links = nullptr,
                                    const std::vector<bool>* banned_dcs = nullptr);

// Yen's algorithm: up to k shortest loopless routes.
std::vector<WanRoute> KShortestWanRoutes(const Topology& topo, DcId src, DcId dst, int k);

}  // namespace bds

#endif  // BDS_SRC_TOPOLOGY_ROUTING_H_
