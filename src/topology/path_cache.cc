#include "src/topology/path_cache.h"

#include <algorithm>

#include "src/common/status.h"
#include "src/telemetry/telemetry.h"

namespace bds {

ServerPathCache::ServerPathCache(const Topology* topo, const WanRoutingTable* routing,
                                 int max_routes)
    : topo_(topo), routing_(routing), max_routes_(max_routes) {
  BDS_CHECK(topo != nullptr && routing != nullptr);
  BDS_CHECK(max_routes >= 1);
  entries_.resize(static_cast<size_t>(topo->num_dcs()) * static_cast<size_t>(topo->num_dcs()));
}

void ServerPathCache::EnsurePair(DcId src_dc, DcId dst_dc) {
  DcPairEntry& entry = entries_[PairIndex(src_dc, dst_dc)];
  if (entry.built) {
    return;
  }
  entry.wan_links.clear();
  entry.route_index.clear();
  if (src_dc == dst_dc) {
    entry.wan_links.emplace_back();  // NIC-only path.
    entry.route_index.push_back(-1);
  } else {
    const std::vector<WanRoute>& routes = routing_->Routes(src_dc, dst_dc);
    size_t n = std::min(routes.size(), static_cast<size_t>(max_routes_));
    for (size_t r = 0; r < n; ++r) {
      entry.wan_links.push_back(routes[r].links);
      entry.route_index.push_back(static_cast<int>(r));
    }
  }
  entry.built = true;
  ++misses_;
  BDS_TELEMETRY_COUNT("path_cache.misses", 1);
}

void ServerPathCache::MaterializePaths(ServerId src, ServerId dst,
                                       std::vector<ServerPath>* out) const {
  if (src == dst) {
    out->clear();
    return;
  }
  const Server& s = topo_->server(src);
  const Server& d = topo_->server(dst);
  const DcPairEntry& entry = entries_[PairIndex(s.dc, d.dc)];
  BDS_CHECK_MSG(entry.built, "ServerPathCache: EnsurePair not called for this DC pair");
  // Called concurrently under ParallelRunner; the telemetry add goes to the
  // calling thread's shard and the stats counter is a relaxed atomic, so
  // both are race-free.
  hits_.fetch_add(1, std::memory_order_relaxed);
  BDS_TELEMETRY_COUNT("path_cache.hits", 1);
  out->resize(entry.wan_links.size());
  for (size_t r = 0; r < entry.wan_links.size(); ++r) {
    ServerPath& path = (*out)[r];
    path.src = src;
    path.dst = dst;
    path.wan_route_index = entry.route_index[r];
    const std::vector<LinkId>& wan = entry.wan_links[r];
    path.links.clear();
    path.links.reserve(wan.size() + 2);
    path.links.push_back(s.uplink);
    path.links.insert(path.links.end(), wan.begin(), wan.end());
    path.links.push_back(d.downlink);
  }
}

void ServerPathCache::Invalidate() {
  for (DcPairEntry& entry : entries_) {
    entry.built = false;
  }
  ++generation_;
  BDS_TELEMETRY_COUNT("path_cache.invalidations", 1);
  telemetry::TraceInstant("path_cache.invalidate", "topology");
}

}  // namespace bds
